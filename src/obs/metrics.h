// Process-wide metrics registry: named counters, gauges and histogram-backed
// latency metrics with label support.
//
// Design (Per.15 / CP.3): recording on hot paths goes through pre-resolved
// *handles* — a Counter is one relaxed atomic add, a Gauge one relaxed store,
// a LatencyMetric one mutex-guarded histogram insert (contended only when the
// same handle is shared across threads; components keep per-shard handles so
// the common case is uncontended). Handle resolution (GetCounter etc.) takes
// the registry mutex and is meant for construction time, never per event.
//
// Labels make one logical metric family out of many cells
// ("sampling.cells{shard=3}"); Snapshot supports the hierarchical
// aggregations the paper's figures need: per-shard -> per-worker -> cluster
// (sum / merge across cells, or grouped by one label key).
//
// Every module that used to hand-roll a Stats struct (SamplingShardCore,
// ServingCore, kv::KvStore, mq::Broker, ThreadedCluster) now records here;
// the old Stats accessors remain as thin views over registry handles.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace helios::obs {

// Label set attached to one metric cell, e.g. {{"worker","3"},{"shard","1"}}.
// Order-insensitive: cells are keyed by the canonical (sorted) rendering.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Canonical "{k1=v1,k2=v2}" rendering (sorted by key); "" for no labels.
std::string CanonicalLabels(const Labels& labels);

// Monotonically increasing counter. Relaxed atomics: cross-thread visibility
// of totals is all snapshots need, not ordering.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous value that can move both ways (table sizes, bytes resident).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Latency/size distribution backed by util::Histogram.
class LatencyMetric {
 public:
  void Record(std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.Record(value);
  }
  util::Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_;
  }

 private:
  mutable std::mutex mutex_;
  util::Histogram hist_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Handle lookup/creation. Returned pointers stay valid for the registry's
  // lifetime. The same (name, labels) always yields the same handle.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  LatencyMetric* GetLatency(const std::string& name, const Labels& labels = {});

  // One metric cell in a snapshot.
  template <typename V>
  struct Cell {
    Labels labels;
    V value;
  };

  // A point-in-time copy of every metric, safe to aggregate/serialize while
  // recording continues.
  struct Snapshot {
    std::map<std::string, std::vector<Cell<std::uint64_t>>> counters;
    std::map<std::string, std::vector<Cell<std::int64_t>>> gauges;
    std::map<std::string, std::vector<Cell<util::Histogram>>> latencies;

    // ---- hierarchical aggregation
    // Sum of every cell of a counter family (cluster-level total).
    std::uint64_t CounterTotal(const std::string& name) const;
    std::int64_t GaugeTotal(const std::string& name) const;
    // Merge of every cell of a latency family.
    util::Histogram LatencyTotal(const std::string& name) const;
    // Intermediate level: sums grouped by one label key, e.g.
    // CounterBy("sampling.updates_processed", "worker") folds per-shard
    // cells into per-worker totals. Cells missing the key group under "".
    std::map<std::string, std::uint64_t> CounterBy(const std::string& name,
                                                   const std::string& label_key) const;
    std::map<std::string, util::Histogram> LatencyBy(const std::string& name,
                                                     const std::string& label_key) const;

    // Text exposition, one "name{labels} value" line per cell (histograms
    // render their Summary()); families sorted by name.
    std::string Dump() const;
    // Machine-readable form for dropping next to BENCH_*.json outputs.
    std::string ToJson() const;
  };

  Snapshot TakeSnapshot() const;
  std::string Dump() const { return TakeSnapshot().Dump(); }

 private:
  template <typename M>
  M* GetIn(std::map<std::string, std::unique_ptr<M>>& family, const std::string& name,
           const Labels& labels, std::map<std::string, Labels>& label_index);

  mutable std::mutex mutex_;
  // Keyed by "name" + canonical labels; label_index_ remembers the parsed
  // labels of each key so snapshots do not re-parse.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyMetric>> latencies_;
  std::map<std::string, Labels> label_index_;
  std::map<std::string, std::string> name_index_;  // key -> family name
};

}  // namespace helios::obs
