#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace helios::obs {

namespace {
void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}
}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceBuffer::Push(Event e) {
  if (events_.size() < capacity_) {
    events_.push_back(std::move(e));
    return;
  }
  // Ring full: overwrite the oldest retained event.
  events_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  if (dropped_counter_ != nullptr) dropped_counter_->Add(1);
}

void TraceBuffer::AddComplete(const std::string& name, const std::string& category,
                              std::int64_t ts_us, std::int64_t dur_us, std::uint32_t pid,
                              std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  Push({'X', name, category, ts_us, dur_us < 0 ? 0 : dur_us, 0, pid, tid, 0});
}

void TraceBuffer::AddInstant(const std::string& name, const std::string& category,
                             std::int64_t ts_us, std::uint32_t pid, std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  Push({'i', name, category, ts_us, 0, 0, pid, tid, 0});
}

void TraceBuffer::AddCounter(const std::string& name, std::int64_t ts_us, std::uint32_t pid,
                             const std::string& series, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Push({'C', name, series, ts_us, 0, value, pid, 0, 0});
}

void TraceBuffer::AddFlowStart(const std::string& name, const std::string& category,
                               std::int64_t ts_us, std::uint32_t pid, std::uint32_t tid,
                               std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Push({'s', name, category, ts_us, 0, 0, pid, tid, id});
}

void TraceBuffer::AddFlowEnd(const std::string& name, const std::string& category,
                             std::int64_t ts_us, std::uint32_t pid, std::uint32_t tid,
                             std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Push({'f', name, category, ts_us, 0, 0, pid, tid, id});
}

void TraceBuffer::SetProcessName(std::uint32_t pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  metadata_.push_back({'M', "process_name", name, 0, 0, 0, pid, 0, 0});
}

void TraceBuffer::BindDroppedCounter(Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  dropped_counter_ = counter;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size() + metadata_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceBuffer::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&os, &first](const Event& e) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    AppendEscaped(os, e.name);
    os << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us << ",\"pid\":" << e.pid;
    switch (e.phase) {
      case 'X':
        os << ",\"tid\":" << e.tid << ",\"dur\":" << e.dur_us << ",\"cat\":\"";
        AppendEscaped(os, e.category);
        os << "\"";
        break;
      case 'i':
        os << ",\"tid\":" << e.tid << ",\"s\":\"t\",\"cat\":\"";
        AppendEscaped(os, e.category);
        os << "\"";
        break;
      case 's':
        os << ",\"tid\":" << e.tid << ",\"id\":" << e.id << ",\"cat\":\"";
        AppendEscaped(os, e.category);
        os << "\"";
        break;
      case 'f':
        // bp:"e" binds the flow end to the enclosing slice at this ts.
        os << ",\"tid\":" << e.tid << ",\"id\":" << e.id << ",\"bp\":\"e\",\"cat\":\"";
        AppendEscaped(os, e.category);
        os << "\"";
        break;
      case 'C':
        os << ",\"args\":{\"";
        AppendEscaped(os, e.category);
        os << "\":" << e.value << "}";
        break;
      case 'M':
        os << ",\"args\":{\"name\":\"";
        AppendEscaped(os, e.category);
        os << "\"}";
        break;
      default:
        break;
    }
    os << "}";
  };
  for (const Event& e : metadata_) emit(e);
  // Oldest-first: once the ring has wrapped, head_ is the oldest slot.
  const std::size_t n = events_.size();
  const std::size_t start = n == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) emit(events_[(start + i) % n]);
  os << "]}";
  return os.str();
}

util::Status TraceBuffer::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Internal("cannot open trace file " + path);
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return out ? util::Status::Ok() : util::Status::Internal("short write to " + path);
}

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIngest: return "ingest";
    case Stage::kSample: return "sample";
    case Stage::kCascade: return "cascade";
    case Stage::kCacheApply: return "cache_apply";
    case Stage::kServe: return "serve";
  }
  return "?";
}

StageTracer::StageTracer(MetricsRegistry* registry, const Clock* clock, TraceBuffer* trace,
                         const Labels& labels)
    : clock_(clock), trace_(trace) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    stages_[s] = registry->GetLatency(
        std::string("pipeline.stage.") + StageName(static_cast<Stage>(s)), labels);
  }
  e2e_ = registry->GetLatency("pipeline.ingest_e2e", labels);
}

void StageTracer::RecordSpan(Stage stage, std::int64_t start_us, std::int64_t dur_us,
                             std::uint32_t pid, std::uint32_t tid) {
  if (dur_us < 0) dur_us = 0;
  stages_[static_cast<std::size_t>(stage)]->Record(static_cast<std::uint64_t>(dur_us));
  if (trace_ != nullptr) {
    trace_->AddComplete(StageName(stage), "pipeline", start_us, dur_us, pid, tid);
  }
}

void StageTracer::RecordEndToEnd(std::int64_t origin_us, std::int64_t now_us) {
  if (origin_us < 0 || now_us < origin_us) return;
  e2e_->Record(static_cast<std::uint64_t>(now_us - origin_us));
}

}  // namespace helios::obs
