// Causal trace context threaded through the dissemination and query paths.
//
// A TraceContext names one causal chain — "this graph update and everything
// it spawned" or "this query and its GNN inference" — across node
// boundaries. It is deliberately tiny (three u64s) so it can ride inside
// ServingMessage / ServingBatch wire frames with one flags byte of overhead
// when tracing is off, and it is runtime-agnostic: ids come from an explicit
// allocator, never from wall time or global RNG, so DES runs stay
// deterministic and fig20's golden-vs-faulty byte parity is unaffected.
//
// Lifecycle: the ingest site (sampling shard actor, DES submit path, or a
// query frontend) mints a root context with TraceIdAllocator::Root(); each
// downstream hop derives a child span with Child(). The trace_id is also the
// Chrome-trace flow-event id, which is what stitches sampler-side spans to
// serving-side spans into one timeline arrow.
#pragma once

#include <atomic>
#include <cstdint>

namespace helios::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;        // 0 = not traced
  std::uint64_t span_id = 0;         // this hop's span
  std::uint64_t parent_span_id = 0;  // 0 = root span

  bool active() const { return trace_id != 0; }

  // Derives the context for a downstream hop: same trace, new span,
  // parented to this one.
  TraceContext Child(std::uint64_t child_span) const {
    return TraceContext{trace_id, child_span, span_id};
  }
};

inline bool operator==(const TraceContext& a, const TraceContext& b) {
  return a.trace_id == b.trace_id && a.span_id == b.span_id &&
         a.parent_span_id == b.parent_span_id;
}

// Deterministic id source. One allocator per runtime (cluster or DES run);
// ids are unique within it, which is all flow binding needs. The optional
// `salt` lets co-existing runtimes (e.g. two clusters in one test) keep
// their id spaces disjoint.
class TraceIdAllocator {
 public:
  explicit TraceIdAllocator(std::uint64_t salt = 0) : next_(salt * (1ull << 48) + 1) {}

  std::uint64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  // Mints a root context: fresh trace id, span id == trace id, no parent.
  TraceContext Root() {
    const std::uint64_t id = Next();
    return TraceContext{id, id, 0};
  }

 private:
  std::atomic<std::uint64_t> next_;
};

}  // namespace helios::obs
