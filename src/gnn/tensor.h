// Minimal dense row-major matrix math for the GNN substrate.
//
// Only what GraphSAGE inference/training needs: matmul, bias add, ReLU,
// row-wise mean, dot products, L2 normalization. Deliberately simple loops
// — at the (layers x fan-out x hidden-dim) sizes of online inference these
// are cache-resident and the compiler vectorizes them.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/aligned.h"

namespace helios::gnn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.f) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  float* Row(std::size_t r) { return data_.data() + r * cols_; }
  const float* Row(std::size_t r) const { return data_.data() + r * cols_; }
  float& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  util::AlignedVector<float>& data() { return data_; }
  const util::AlignedVector<float>& data() const { return data_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  // 32-byte aligned so vector loads over weight rows never straddle the
  // allocation's leading cache line.
  util::AlignedVector<float> data_;
};

// out = a (r x k) * b (k x c). out must be r x c; accumulates from zero.
inline void MatMul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows() && out.rows() == a.rows() && out.cols() == b.cols());
  std::fill(out.data().begin(), out.data().end(), 0.f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.At(i, k);
      if (aik == 0.f) continue;
      const float* brow = b.Row(k);
      float* orow = out.Row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
}

inline void AddBiasRelu(Matrix& m, const std::vector<float>& bias, bool relu) {
  assert(bias.size() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.Row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      row[j] += bias[j];
      if (relu && row[j] < 0.f) row[j] = 0.f;
    }
  }
}

inline float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  assert(a.size() == b.size());
  float s = 0.f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline void L2NormalizeRow(float* row, std::size_t n) {
  float norm = 0.f;
  for (std::size_t i = 0; i < n; ++i) norm += row[i] * row[i];
  norm = std::sqrt(norm);
  if (norm < 1e-12f) return;
  for (std::size_t i = 0; i < n; ++i) row[i] /= norm;
}

inline float Sigmoid(float x) { return 1.f / (1.f + std::exp(-x)); }

}  // namespace helios::gnn
