#include "gnn/graphsage.h"

#include <algorithm>
#include <cmath>

#include "util/aligned.h"
#include "util/hash.h"
#include "util/simd.h"

namespace helios::gnn {

namespace {
// Glorot-style deterministic init.
void InitMatrix(Matrix& m, util::Rng& rng) {
  const float scale = std::sqrt(6.f / static_cast<float>(m.rows() + m.cols()));
  for (auto& v : m.data()) {
    v = (static_cast<float>(rng.UniformDouble()) * 2.f - 1.f) * scale;
  }
}
}  // namespace

GraphSageEncoder::GraphSageEncoder(const SageConfig& config) : config_(config) {
  util::Rng rng(config_.seed);
  layers_.resize(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = l == 0 ? config_.input_dim : config_.hidden_dim;
    const std::size_t out = l + 1 == config_.num_layers ? config_.output_dim
                                                        : config_.hidden_dim;
    layers_[l].w_self = Matrix(in, out);
    layers_[l].w_neigh = Matrix(in, out);
    layers_[l].bias.assign(out, 0.f);
    InitMatrix(layers_[l].w_self, rng);
    InitMatrix(layers_[l].w_neigh, rng);
  }
  // MixHash-folded config fingerprint; the weights are a pure function of
  // these fields, so equal versions imply equal weights.
  std::uint64_t v = util::MixHash(config_.seed);
  v = util::MixHash(v ^ static_cast<std::uint64_t>(config_.input_dim));
  v = util::MixHash(v ^ static_cast<std::uint64_t>(config_.hidden_dim));
  v = util::MixHash(v ^ static_cast<std::uint64_t>(config_.output_dim));
  v = util::MixHash(v ^ static_cast<std::uint64_t>(config_.num_layers));
  model_version_ = v;
}

void GraphSageEncoder::Apply(const Layer& layer, const float* self, const float* neigh_mean,
                             std::size_t cur, float* out, bool relu) const {
  // Inputs past `cur` read as zero in the historical loop and were skipped
  // by its zero-input shortcut, so capping the row count is equivalent.
  const std::size_t in = std::min(layer.w_self.rows(), cur);
  const std::size_t width = layer.w_self.cols();
  util::simd::SageApply(self, neigh_mean, layer.w_self.Row(0), layer.w_neigh.Row(0), in, width,
                        width, layer.bias.data(), relu, out);
}

std::vector<float> GraphSageEncoder::EmbedSeed(const SampledSubgraph& sample) const {
  const std::size_t depth = sample.layers.size();  // K + 1 node depths
  if (depth == 0) return std::vector<float>(config_.output_dim, 0.f);

  // h[d] holds the activations of depth d as one flat node-major buffer of
  // width `cur` (no per-node vector). Initial activations gather straight
  // from the result's feature arena via spans — no map lookup, no copy of
  // the feature into an intermediate vector. Missing features are zero
  // (eventual-consistency miss, §6); longer ones are truncated.
  std::size_t cur = config_.input_dim;
  std::vector<util::AlignedVector<float>> h(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    const auto& layer_nodes = sample.layers[d];
    h[d].assign(layer_nodes.size() * cur, 0.f);
    for (std::size_t i = 0; i < layer_nodes.size(); ++i) {
      const std::span<const float> f = sample.features.Find(layer_nodes[i].vertex);
      const std::size_t n = std::min(cur, f.size());
      std::copy(f.begin(), f.begin() + static_cast<std::ptrdiff_t>(n),
                h[d].begin() + static_cast<std::ptrdiff_t>(i * cur));
    }
  }

  const std::size_t effective_layers = std::min(config_.num_layers, depth);
  // Per-depth child sums/counts, accumulated in ONE pass over the child
  // layer (instead of one scan of the whole child layer per parent). Each
  // parent still sums its children in layer order, so the float summation
  // order — and therefore the result — is identical to the quadratic scan.
  // The elementwise add/divide go through the simd kernels, which are
  // value-exact vs their scalar loops (no reassociation, no FMA), so the
  // embedding stays bit-identical across dispatch levels.
  util::AlignedVector<float> sums;
  std::vector<std::uint32_t> n_children;
  for (std::size_t l = 0; l < effective_layers; ++l) {
    const bool last = l + 1 == config_.num_layers;
    const std::size_t width = layers_[l].w_self.cols();
    // After layer l, depths 0 .. depth-2-l hold fresh activations.
    const std::size_t top = depth >= l + 2 ? depth - l - 1 : 1;
    std::vector<util::AlignedVector<float>> next(top);
    for (std::size_t d = 0; d < top; ++d) {
      const std::size_t n_parents = sample.layers[d].size();
      sums.assign(n_parents * cur, 0.f);
      n_children.assign(n_parents, 0);
      if (d + 1 < h.size()) {
        const auto& child_nodes = sample.layers[d + 1];
        for (std::size_t c = 0; c < child_nodes.size(); ++c) {
          const std::size_t p = child_nodes[c].parent;
          if (p >= n_parents) continue;
          const float* child = h[d + 1].data() + c * cur;
          float* acc = sums.data() + p * cur;
          util::simd::AddF32(acc, child, cur);
          n_children[p]++;
        }
      }
      next[d].assign(n_parents * width, 0.f);
      for (std::size_t i = 0; i < n_parents; ++i) {
        float* mean = sums.data() + i * cur;
        if (n_children[i] > 0) {
          util::simd::DivF32(mean, static_cast<float>(n_children[i]), cur);
        }
        Apply(layers_[l], h[d].data() + i * cur, mean, cur, next[d].data() + i * width,
              /*relu=*/!last);
      }
    }
    h = std::move(next);
    cur = width;
  }
  std::vector<float> out(config_.output_dim, 0.f);
  if (!h[0].empty()) {
    const std::size_t n = std::min(cur, config_.output_dim);
    std::copy(h[0].begin(), h[0].begin() + static_cast<std::ptrdiff_t>(n), out.begin());
  }
  L2NormalizeRow(out.data(), out.size());
  return out;
}

bool GraphSageEncoder::EmbedSeedCached(const ServingCore& core, graph::VertexId seed,
                                       CachedEmbedScratch& scratch,
                                       std::vector<float>& out) const {
  if (config_.num_layers != 2) return false;
  const std::size_t dim = config_.input_dim;
  if (!core.ServeAggregatesInto(seed, dim, model_version_, scratch.result, scratch.serve)) {
    return false;
  }
  const AggregateServeResult& r = scratch.result;
  const std::size_t nc = r.children.size();

  // Zero-padded input rows: row 0 the seed, row 1+i child i — the same
  // gather EmbedSeed does from the subgraph's feature table.
  scratch.x.assign((1 + nc) * dim, 0.f);
  auto load_row = [&](graph::VertexId v, float* row) {
    const std::span<const float> f = r.features.Find(v);
    const std::size_t n = std::min(dim, f.size());
    std::copy(f.begin(), f.begin() + static_cast<std::ptrdiff_t>(n), row);
  };
  load_row(seed, scratch.x.data());
  for (std::size_t i = 0; i < nc; ++i) load_row(r.children[i], scratch.x.data() + (1 + i) * dim);

  // Layer 0 (ReLU): the seed's neighbour mean over its children's input
  // rows in cell order; each child's neighbour mean is its hop-1 aggregate
  // row (cached or just recomputed — bit-identical either way).
  const std::size_t width0 = layers_[0].w_self.cols();
  scratch.mean.assign(dim, 0.f);
  for (std::size_t i = 0; i < nc; ++i) {
    util::simd::AddF32(scratch.mean.data(), scratch.x.data() + (1 + i) * dim, dim);
  }
  if (nc > 0) util::simd::DivF32(scratch.mean.data(), static_cast<float>(nc), dim);
  scratch.h1.assign((1 + nc) * width0, 0.f);
  Apply(layers_[0], scratch.x.data(), scratch.mean.data(), dim, scratch.h1.data(),
        /*relu=*/true);
  for (std::size_t i = 0; i < nc; ++i) {
    Apply(layers_[0], scratch.x.data() + (1 + i) * dim, r.aggs.data() + i * dim, dim,
          scratch.h1.data() + (1 + i) * width0, /*relu=*/true);
  }

  // Layer 1 (no ReLU, the last): seed only, mean over the children's
  // first-layer activations in the same order.
  scratch.mean.assign(width0, 0.f);
  for (std::size_t i = 0; i < nc; ++i) {
    util::simd::AddF32(scratch.mean.data(), scratch.h1.data() + (1 + i) * width0, width0);
  }
  if (nc > 0) util::simd::DivF32(scratch.mean.data(), static_cast<float>(nc), width0);
  const std::size_t width1 = layers_[1].w_self.cols();
  scratch.h2.assign(width1, 0.f);
  Apply(layers_[1], scratch.h1.data(), scratch.mean.data(), width0, scratch.h2.data(),
        /*relu=*/false);

  out.assign(config_.output_dim, 0.f);
  const std::size_t n = std::min(width1, config_.output_dim);
  std::copy(scratch.h2.begin(), scratch.h2.begin() + static_cast<std::ptrdiff_t>(n),
            out.begin());
  L2NormalizeRow(out.data(), out.size());
  return true;
}

float LinkPredictor::Score(const std::vector<float>& zu, const std::vector<float>& zi) const {
  float s = b_;
  const std::size_t n = std::min({w_.size(), zu.size(), zi.size()});
  for (std::size_t j = 0; j < n; ++j) s += w_[j] * zu[j] * zi[j];
  return Sigmoid(s);
}

float LinkPredictor::Train(const std::vector<float>& zu, const std::vector<float>& zi,
                           float label, float lr) {
  const float p = Score(zu, zi);
  const float grad = p - label;
  const std::size_t n = std::min({w_.size(), zu.size(), zi.size()});
  for (std::size_t j = 0; j < n; ++j) w_[j] -= lr * grad * zu[j] * zi[j];
  b_ -= lr * grad;
  const float eps = 1e-7f;
  return label > 0.5f ? -std::log(p + eps) : -std::log(1.f - p + eps);
}

}  // namespace helios::gnn
