#include "gnn/graphsage.h"

#include <algorithm>
#include <cmath>

namespace helios::gnn {

namespace {
// Glorot-style deterministic init.
void InitMatrix(Matrix& m, util::Rng& rng) {
  const float scale = std::sqrt(6.f / static_cast<float>(m.rows() + m.cols()));
  for (auto& v : m.data()) {
    v = (static_cast<float>(rng.UniformDouble()) * 2.f - 1.f) * scale;
  }
}
}  // namespace

GraphSageEncoder::GraphSageEncoder(const SageConfig& config) : config_(config) {
  util::Rng rng(config_.seed);
  layers_.resize(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = l == 0 ? config_.input_dim : config_.hidden_dim;
    const std::size_t out = l + 1 == config_.num_layers ? config_.output_dim
                                                        : config_.hidden_dim;
    layers_[l].w_self = Matrix(in, out);
    layers_[l].w_neigh = Matrix(in, out);
    layers_[l].bias.assign(out, 0.f);
    InitMatrix(layers_[l].w_self, rng);
    InitMatrix(layers_[l].w_neigh, rng);
  }
}

void GraphSageEncoder::Apply(const Layer& layer, const std::vector<float>& self,
                             const std::vector<float>& neigh_mean, std::vector<float>& out,
                             bool relu) const {
  const std::size_t in = layer.w_self.rows();
  const std::size_t width = layer.w_self.cols();
  out.assign(width, 0.f);
  for (std::size_t k = 0; k < in; ++k) {
    const float s = k < self.size() ? self[k] : 0.f;
    const float n = k < neigh_mean.size() ? neigh_mean[k] : 0.f;
    if (s == 0.f && n == 0.f) continue;
    const float* ws = layer.w_self.Row(k);
    const float* wn = layer.w_neigh.Row(k);
    for (std::size_t j = 0; j < width; ++j) out[j] += s * ws[j] + n * wn[j];
  }
  for (std::size_t j = 0; j < width; ++j) {
    out[j] += layer.bias[j];
    if (relu && out[j] < 0.f) out[j] = 0.f;
  }
}

std::vector<float> GraphSageEncoder::EmbedSeed(const SampledSubgraph& sample) const {
  const std::size_t depth = sample.layers.size();  // K + 1 node depths
  if (depth == 0) return std::vector<float>(config_.output_dim, 0.f);

  // h[d][i]: current activation of node i at depth d. Initialize from raw
  // features, padding/truncating to input_dim; missing features are zero
  // (eventual-consistency miss, §6).
  std::vector<std::vector<std::vector<float>>> h(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    h[d].resize(sample.layers[d].size());
    for (std::size_t i = 0; i < sample.layers[d].size(); ++i) {
      auto& dst = h[d][i];
      dst.assign(config_.input_dim, 0.f);
      auto it = sample.features.find(sample.layers[d][i].vertex);
      if (it != sample.features.end()) {
        const std::size_t n = std::min(config_.input_dim, it->second.size());
        std::copy(it->second.begin(), it->second.begin() + static_cast<std::ptrdiff_t>(n),
                  dst.begin());
      }
    }
  }

  const std::size_t effective_layers = std::min(config_.num_layers, depth - 1 + 1);
  std::vector<float> neigh_mean;
  for (std::size_t l = 0; l < effective_layers; ++l) {
    const bool last = l + 1 == config_.num_layers;
    // After layer l, depths 0 .. depth-2-l hold fresh activations.
    const std::size_t top = depth >= l + 2 ? depth - l - 1 : 1;
    std::vector<std::vector<std::vector<float>>> next(top);
    for (std::size_t d = 0; d < top; ++d) {
      next[d].resize(h[d].size());
      for (std::size_t i = 0; i < h[d].size(); ++i) {
        // Mean of children activations at depth d+1.
        neigh_mean.assign(h[d][i].size(), 0.f);
        std::size_t n_children = 0;
        if (d + 1 < h.size()) {
          for (std::size_t c = 0; c < sample.layers[d + 1].size(); ++c) {
            if (sample.layers[d + 1][c].parent != i) continue;
            const auto& child = h[d + 1][c];
            for (std::size_t j = 0; j < neigh_mean.size() && j < child.size(); ++j) {
              neigh_mean[j] += child[j];
            }
            n_children++;
          }
        }
        if (n_children > 0) {
          for (auto& v : neigh_mean) v /= static_cast<float>(n_children);
        }
        Apply(layers_[l], h[d][i], neigh_mean, next[d][i], /*relu=*/!last);
      }
    }
    h = std::move(next);
  }
  std::vector<float> out = h[0].empty() ? std::vector<float>(config_.output_dim, 0.f)
                                        : std::move(h[0][0]);
  out.resize(config_.output_dim, 0.f);
  L2NormalizeRow(out.data(), out.size());
  return out;
}

float LinkPredictor::Score(const std::vector<float>& zu, const std::vector<float>& zi) const {
  float s = b_;
  const std::size_t n = std::min({w_.size(), zu.size(), zi.size()});
  for (std::size_t j = 0; j < n; ++j) s += w_[j] * zu[j] * zi[j];
  return Sigmoid(s);
}

float LinkPredictor::Train(const std::vector<float>& zu, const std::vector<float>& zi,
                           float label, float lr) {
  const float p = Score(zu, zi);
  const float grad = p - label;
  const std::size_t n = std::min({w_.size(), zu.size(), zi.size()});
  for (std::size_t j = 0; j < n; ++j) w_[j] -= lr * grad * zu[j] * zi[j];
  b_ -= lr * grad;
  const float eps = 1e-7f;
  return label > 0.5f ? -std::log(p + eps) : -std::log(1.f - p + eps);
}

}  // namespace helios::gnn
