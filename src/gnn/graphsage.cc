#include "gnn/graphsage.h"

#include <algorithm>
#include <cmath>

#include "util/aligned.h"
#include "util/simd.h"

namespace helios::gnn {

namespace {
// Glorot-style deterministic init.
void InitMatrix(Matrix& m, util::Rng& rng) {
  const float scale = std::sqrt(6.f / static_cast<float>(m.rows() + m.cols()));
  for (auto& v : m.data()) {
    v = (static_cast<float>(rng.UniformDouble()) * 2.f - 1.f) * scale;
  }
}
}  // namespace

GraphSageEncoder::GraphSageEncoder(const SageConfig& config) : config_(config) {
  util::Rng rng(config_.seed);
  layers_.resize(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = l == 0 ? config_.input_dim : config_.hidden_dim;
    const std::size_t out = l + 1 == config_.num_layers ? config_.output_dim
                                                        : config_.hidden_dim;
    layers_[l].w_self = Matrix(in, out);
    layers_[l].w_neigh = Matrix(in, out);
    layers_[l].bias.assign(out, 0.f);
    InitMatrix(layers_[l].w_self, rng);
    InitMatrix(layers_[l].w_neigh, rng);
  }
}

void GraphSageEncoder::Apply(const Layer& layer, const float* self, const float* neigh_mean,
                             std::size_t cur, float* out, bool relu) const {
  const std::size_t in = layer.w_self.rows();
  const std::size_t width = layer.w_self.cols();
  std::fill(out, out + width, 0.f);
  for (std::size_t k = 0; k < in; ++k) {
    const float s = k < cur ? self[k] : 0.f;
    const float n = k < cur ? neigh_mean[k] : 0.f;
    if (s == 0.f && n == 0.f) continue;
    const float* ws = layer.w_self.Row(k);
    const float* wn = layer.w_neigh.Row(k);
    for (std::size_t j = 0; j < width; ++j) out[j] += s * ws[j] + n * wn[j];
  }
  for (std::size_t j = 0; j < width; ++j) {
    out[j] += layer.bias[j];
    if (relu && out[j] < 0.f) out[j] = 0.f;
  }
}

std::vector<float> GraphSageEncoder::EmbedSeed(const SampledSubgraph& sample) const {
  const std::size_t depth = sample.layers.size();  // K + 1 node depths
  if (depth == 0) return std::vector<float>(config_.output_dim, 0.f);

  // h[d] holds the activations of depth d as one flat node-major buffer of
  // width `cur` (no per-node vector). Initial activations gather straight
  // from the result's feature arena via spans — no map lookup, no copy of
  // the feature into an intermediate vector. Missing features are zero
  // (eventual-consistency miss, §6); longer ones are truncated.
  std::size_t cur = config_.input_dim;
  std::vector<util::AlignedVector<float>> h(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    const auto& layer_nodes = sample.layers[d];
    h[d].assign(layer_nodes.size() * cur, 0.f);
    for (std::size_t i = 0; i < layer_nodes.size(); ++i) {
      const std::span<const float> f = sample.features.Find(layer_nodes[i].vertex);
      const std::size_t n = std::min(cur, f.size());
      std::copy(f.begin(), f.begin() + static_cast<std::ptrdiff_t>(n),
                h[d].begin() + static_cast<std::ptrdiff_t>(i * cur));
    }
  }

  const std::size_t effective_layers = std::min(config_.num_layers, depth);
  // Per-depth child sums/counts, accumulated in ONE pass over the child
  // layer (instead of one scan of the whole child layer per parent). Each
  // parent still sums its children in layer order, so the float summation
  // order — and therefore the result — is identical to the quadratic scan.
  // The elementwise add/divide go through the simd kernels, which are
  // value-exact vs their scalar loops (no reassociation, no FMA), so the
  // embedding stays bit-identical across dispatch levels.
  util::AlignedVector<float> sums;
  std::vector<std::uint32_t> n_children;
  for (std::size_t l = 0; l < effective_layers; ++l) {
    const bool last = l + 1 == config_.num_layers;
    const std::size_t width = layers_[l].w_self.cols();
    // After layer l, depths 0 .. depth-2-l hold fresh activations.
    const std::size_t top = depth >= l + 2 ? depth - l - 1 : 1;
    std::vector<util::AlignedVector<float>> next(top);
    for (std::size_t d = 0; d < top; ++d) {
      const std::size_t n_parents = sample.layers[d].size();
      sums.assign(n_parents * cur, 0.f);
      n_children.assign(n_parents, 0);
      if (d + 1 < h.size()) {
        const auto& child_nodes = sample.layers[d + 1];
        for (std::size_t c = 0; c < child_nodes.size(); ++c) {
          const std::size_t p = child_nodes[c].parent;
          if (p >= n_parents) continue;
          const float* child = h[d + 1].data() + c * cur;
          float* acc = sums.data() + p * cur;
          util::simd::AddF32(acc, child, cur);
          n_children[p]++;
        }
      }
      next[d].assign(n_parents * width, 0.f);
      for (std::size_t i = 0; i < n_parents; ++i) {
        float* mean = sums.data() + i * cur;
        if (n_children[i] > 0) {
          util::simd::DivF32(mean, static_cast<float>(n_children[i]), cur);
        }
        Apply(layers_[l], h[d].data() + i * cur, mean, cur, next[d].data() + i * width,
              /*relu=*/!last);
      }
    }
    h = std::move(next);
    cur = width;
  }
  std::vector<float> out(config_.output_dim, 0.f);
  if (!h[0].empty()) {
    const std::size_t n = std::min(cur, config_.output_dim);
    std::copy(h[0].begin(), h[0].begin() + static_cast<std::ptrdiff_t>(n), out.begin());
  }
  L2NormalizeRow(out.data(), out.size());
  return out;
}

float LinkPredictor::Score(const std::vector<float>& zu, const std::vector<float>& zi) const {
  float s = b_;
  const std::size_t n = std::min({w_.size(), zu.size(), zi.size()});
  for (std::size_t j = 0; j < n; ++j) s += w_[j] * zu[j] * zi[j];
  return Sigmoid(s);
}

float LinkPredictor::Train(const std::vector<float>& zu, const std::vector<float>& zi,
                           float label, float lr) {
  const float p = Score(zu, zi);
  const float grad = p - label;
  const std::size_t n = std::min({w_.size(), zu.size(), zi.size()});
  for (std::size_t j = 0; j < n; ++j) w_[j] -= lr * grad * zu[j] * zi[j];
  b_ -= lr * grad;
  const float eps = 1e-7f;
  return label > 0.5f ? -std::log(p + eps) : -std::log(1.f - p + eps);
}

}  // namespace helios::gnn
