// GraphSAGE (mean aggregator) inference over layered K-hop samples, the
// model-service substrate of §7.4/§7.5 (TensorFlow Serving substitute).
//
// The encoder runs L = K layers over the sampled tree produced by
// helios::ServingCore::Serve(): layer l computes, for every node that still
// needs an activation at depth l, h_l = ReLU(W_self h_{l-1}(v) + W_neigh
// mean(h_{l-1}(children)) + b), exactly Equation (1) of §2.1. Weights are
// deterministic functions of a seed; TrainLinkHead() learns the logistic
// link-prediction head on top of frozen encoder embeddings (documented
// substitution: the paper fine-tunes a full GraphSAGE offline, we freeze
// the encoder and train the head — staleness affects both the same way,
// through the sampled neighborhood).
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/tensor.h"
#include "graph/types.h"
#include "helios/serving_core.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace helios::gnn {

struct SageConfig {
  std::size_t input_dim = 16;
  std::size_t hidden_dim = 16;
  std::size_t output_dim = 16;
  std::size_t num_layers = 2;
  std::uint64_t seed = 1234;
};

// Reusable workspace for EmbedSeedCached; all buffers keep capacity across
// queries (one per serving thread, like ServeScratch).
struct CachedEmbedScratch {
  AggregateServeResult result;
  ServeScratch serve;
  util::AlignedVector<float> x;     // zero-padded inputs: row 0 seed, 1+i child i
  util::AlignedVector<float> h1;    // first-layer activations, same row order
  util::AlignedVector<float> mean;  // one aggregate/mean row
  util::AlignedVector<float> h2;    // second-layer activation of the seed
};

class GraphSageEncoder {
 public:
  explicit GraphSageEncoder(const SageConfig& config);

  // Embeds the seed of a layered sample (missing features are treated as
  // zero vectors — the eventual-consistency case).
  std::vector<float> EmbedSeed(const SampledSubgraph& sample) const;

  // Cache-assisted embed through the core's computation-reuse tier
  // (docs/PERF.md "Computation reuse & admission"): children whose hop-1
  // aggregate is cached and fresh skip their hop-2 expansion and feature
  // gather entirely. Bit-identical to Serve() + EmbedSeed() — the miss
  // path recomputes aggregates in the exact summation order EmbedSeed
  // uses, and hits replay the stored floats. Returns false (out untouched)
  // when the tier cannot serve this shape — cache disabled, plan not
  // 2-hop, or num_layers != 2 — so callers fall back to the plain path.
  // Zero heap allocations in steady state with a reused scratch + out.
  bool EmbedSeedCached(const ServingCore& core, graph::VertexId seed,
                       CachedEmbedScratch& scratch, std::vector<float>& out) const;

  const SageConfig& config() const { return config_; }

  // Deterministic fingerprint of the weights (a pure function of the
  // config, which fully determines them) — the aggregate-cache key's model
  // component: a weight/shape change must not reuse old aggregates.
  std::uint64_t model_version() const { return model_version_; }

 private:
  struct Layer {
    Matrix w_self;   // in x out
    Matrix w_neigh;  // in x out
    std::vector<float> bias;
  };

  // h-out for one node given its own h-in and its children's mean h-in,
  // both `cur` floats wide; writes w_self.cols() floats to `out`.
  void Apply(const Layer& layer, const float* self, const float* neigh_mean, std::size_t cur,
             float* out, bool relu) const;

  SageConfig config_;
  std::vector<Layer> layers_;
  std::uint64_t model_version_ = 0;
};

// Logistic link-prediction head: P(link u->i) = sigmoid(w . (z_u ⊙ z_i) + b).
class LinkPredictor {
 public:
  explicit LinkPredictor(std::size_t dim) : w_(dim, 0.f) {}

  float Score(const std::vector<float>& zu, const std::vector<float>& zi) const;

  // One SGD step on a labelled pair; returns the loss.
  float Train(const std::vector<float>& zu, const std::vector<float>& zi, float label,
              float lr);

 private:
  std::vector<float> w_;
  float b_ = 0.f;
};

// The model service of Fig 3/Fig 19: embeds sampled subgraphs and scores
// candidate links. Stateless per request; one instance per serving replica.
class ModelServer {
 public:
  ModelServer(const SageConfig& config) : encoder_(config), predictor_(config.output_dim) {}

  GraphSageEncoder& encoder() { return encoder_; }
  LinkPredictor& predictor() { return predictor_; }

  std::vector<float> Infer(const SampledSubgraph& sample) const {
    return encoder_.EmbedSeed(sample);
  }

 private:
  GraphSageEncoder encoder_;
  LinkPredictor predictor_;
};

}  // namespace helios::gnn
