// Discrete-event cluster emulator.
//
// The paper's evaluation runs on a 10-node cluster (32 HT threads and a
// 10 Gbps NIC per node). This workspace has one core, so the distributed
// experiments are reproduced on virtual time: node handlers execute the
// *real* Helios / MiniGraphDB code, their measured wall-clock cost becomes
// virtual service time on a node's CPU resource (a k-server FIFO queue),
// and messages pay latency + size/bandwidth on Link objects. Only the
// parallelism and the wire are modelled — compute costs are measured, which
// is what makes the reproduced curves meaningful.
//
// The primitives:
//   SimEnv    — the event heap and virtual clock.
//   Resource  — k identical servers with one FIFO queue (a node's cores, or
//               a worker's thread pool).
//   Link      — serialization (bytes/bandwidth) + propagation latency.
//
// Determinism: ties in the event heap break by insertion sequence number,
// so a given seed always yields the same trace.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace helios::sim {

using SimTime = std::int64_t;  // virtual microseconds

class SimEnv {
 public:
  SimTime now() const { return now_; }

  void ScheduleAt(SimTime at, std::function<void()> fn);
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  // Runs events until the heap is empty.
  void Run();
  // Runs events with time <= limit; returns true if events remain.
  bool RunUntil(SimTime limit);

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

// k identical servers, one FIFO queue. Models a node's cores or a worker's
// dedicated thread pool (§4.2's per-workload pools map 1:1 onto Resources).
class Resource {
 public:
  Resource(SimEnv& env, std::size_t servers);

  // Requests `service_time` on one server; `done` runs at completion time.
  void Enqueue(SimTime service_time, std::function<void()> done);

  std::size_t queue_depth() const { return waiting_.size(); }
  std::size_t busy_servers() const { return busy_; }
  std::size_t servers() const { return servers_; }
  // Total busy time accumulated across servers (for utilization reports).
  SimTime busy_time() const { return busy_time_; }

  // Attaches a Chrome-trace sink: every serviced job becomes a complete
  // event on lane `pid` (tid = server slot) and the busy-server count is
  // emitted as a counter series — the per-node occupancy timeline. The
  // buffer must outlive the resource.
  void EnableTrace(obs::TraceBuffer* trace, std::uint32_t pid, std::string name);

 private:
  struct Job {
    SimTime service_time;
    std::function<void()> done;
  };
  void StartService(Job job);
  void OnComplete();
  void EmitOccupancy();

  SimEnv& env_;
  std::size_t servers_;
  std::size_t busy_ = 0;
  SimTime busy_time_ = 0;
  std::deque<Job> waiting_;
  obs::TraceBuffer* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  std::string trace_name_;
};

// A unidirectional network pipe: messages serialize at `bytes_per_us`, then
// propagate with fixed `latency_us`. 10 Gbps ≈ 1250 bytes/us.
class Link {
 public:
  Link(SimEnv& env, SimTime latency_us, double bytes_per_us);

  void Transfer(std::size_t bytes, std::function<void()> delivered);

  SimTime latency_us() const { return latency_us_; }

 private:
  SimEnv& env_;
  SimTime latency_us_;
  double bytes_per_us_;
  SimTime busy_until_ = 0;
};

// Convenience bundle: N nodes, each with a CPU resource and a NIC link to
// the fabric. Send() pays the sender NIC + latency (receive-side CPU cost
// is whatever handler the caller enqueues on the destination's cpu()).
// Loopback messages are free, matching the paper's observation that
// single-machine sampling avoids the network entirely (§3.2).
class SimCluster {
 public:
  struct Options {
    std::size_t num_nodes = 1;
    std::size_t cores_per_node = 32;   // paper: 2 x 16 HT threads
    SimTime net_latency_us = 120;      // intra-DC RTT/2 incl. stack cost
    double gbps = 10.0;
  };

  SimCluster(SimEnv& env, const Options& options);

  SimEnv& env() { return env_; }
  std::size_t num_nodes() const { return cpus_.size(); }
  Resource& cpu(std::size_t node) { return *cpus_[node]; }

  // Delivers `then` at the destination after network transfer (or
  // immediately for loopback). The caller decides what CPU time the
  // handling costs by enqueueing on cpu(to).
  void Send(std::size_t from, std::size_t to, std::size_t bytes, std::function<void()> then);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }

  // Attaches a Chrome-trace sink to every node's CPU resource (pids
  // 2000 + node, named "sim-node-<i>") so a DES run yields the same kind of
  // Perfetto timeline as the threaded runtime.
  void EnableTracing(obs::TraceBuffer* trace);

 private:
  SimEnv& env_;
  std::vector<std::unique_ptr<Resource>> cpus_;
  std::vector<std::unique_ptr<Link>> nics_;  // egress pipe per node
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace helios::sim
