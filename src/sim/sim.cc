#include "sim/sim.h"

#include <cmath>
#include <memory>

namespace helios::sim {

void SimEnv::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

void SimEnv::Run() {
  while (!heap_.empty()) {
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = e.at;
    processed_++;
    e.fn();
  }
}

bool SimEnv::RunUntil(SimTime limit) {
  while (!heap_.empty() && heap_.top().at <= limit) {
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = e.at;
    processed_++;
    e.fn();
  }
  if (now_ < limit) now_ = limit;
  return !heap_.empty();
}

Resource::Resource(SimEnv& env, std::size_t servers)
    : env_(env), servers_(servers == 0 ? 1 : servers) {}

void Resource::Enqueue(SimTime service_time, std::function<void()> done) {
  Job job{service_time < 0 ? 0 : service_time, std::move(done)};
  if (busy_ < servers_) {
    StartService(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void Resource::StartService(Job job) {
  busy_++;
  busy_time_ += job.service_time;
  const SimTime start = env_.now();
  // The slot index only labels the trace lane; FIFO start order makes
  // busy_-1 a stable approximation of "which server took the job".
  const std::uint32_t slot = static_cast<std::uint32_t>(busy_ - 1);
  EmitOccupancy();
  auto done = std::move(job.done);
  env_.ScheduleAfter(job.service_time,
                     [this, done = std::move(done), start, slot,
                      service = job.service_time]() mutable {
    if (trace_ != nullptr && service > 0) {
      trace_->AddComplete(trace_name_, "sim", start, service, trace_pid_, slot);
    }
    OnComplete();
    done();
  });
}

void Resource::OnComplete() {
  busy_--;
  EmitOccupancy();
  if (!waiting_.empty() && busy_ < servers_) {
    Job next = std::move(waiting_.front());
    waiting_.pop_front();
    StartService(std::move(next));
  }
}

void Resource::EnableTrace(obs::TraceBuffer* trace, std::uint32_t pid, std::string name) {
  trace_ = trace;
  trace_pid_ = pid;
  trace_name_ = std::move(name);
}

void Resource::EmitOccupancy() {
  if (trace_ == nullptr) return;
  trace_->AddCounter(trace_name_ + ".occupancy", env_.now(), trace_pid_, "busy",
                     static_cast<double>(busy_));
}

Link::Link(SimEnv& env, SimTime latency_us, double bytes_per_us)
    : env_(env), latency_us_(latency_us < 0 ? 0 : latency_us),
      bytes_per_us_(bytes_per_us <= 0 ? 1.0 : bytes_per_us) {}

void Link::Transfer(std::size_t bytes, std::function<void()> delivered) {
  const SimTime serialization =
      static_cast<SimTime>(std::ceil(static_cast<double>(bytes) / bytes_per_us_));
  const SimTime start = busy_until_ > env_.now() ? busy_until_ : env_.now();
  busy_until_ = start + serialization;
  env_.ScheduleAt(busy_until_ + latency_us_, std::move(delivered));
}

SimCluster::SimCluster(SimEnv& env, const Options& options) : env_(env) {
  const std::size_t n = options.num_nodes == 0 ? 1 : options.num_nodes;
  const double bytes_per_us = options.gbps * 1e9 / 8.0 / 1e6;
  cpus_.reserve(n);
  nics_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cpus_.push_back(std::make_unique<Resource>(env_, options.cores_per_node));
    nics_.push_back(std::make_unique<Link>(env_, options.net_latency_us, bytes_per_us));
  }
}

void SimCluster::EnableTracing(obs::TraceBuffer* trace) {
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    const std::uint32_t pid = 2000 + static_cast<std::uint32_t>(i);
    cpus_[i]->EnableTrace(trace, pid, "cpu");
    trace->SetProcessName(pid, "sim-node-" + std::to_string(i));
  }
}

void SimCluster::Send(std::size_t from, std::size_t to, std::size_t bytes,
                      std::function<void()> then) {
  if (from == to) {
    // Loopback: no NIC, no propagation.
    env_.ScheduleAfter(0, std::move(then));
    return;
  }
  messages_++;
  bytes_ += bytes;
  nics_[from]->Transfer(bytes, std::move(then));
}

}  // namespace helios::sim
