#include "gen/taobao_sessions.h"

#include <algorithm>

namespace helios::gen {

namespace {
// Noisy centroid feature: centroid[c] is a fixed random unit-ish vector.
graph::Feature ClusterFeature(std::uint64_t cluster, std::size_t dim, util::Rng& rng,
                              std::uint64_t feature_seed) {
  util::Rng centroid_rng(feature_seed ^ (cluster * 0x9E3779B97F4A7C15ULL));
  graph::Feature f(dim);
  for (auto& v : f) {
    v = static_cast<float>(centroid_rng.UniformDouble()) * 2.f - 1.f +
        0.25f * (static_cast<float>(rng.UniformDouble()) * 2.f - 1.f);
  }
  return f;
}
}  // namespace

SessionTaobao::SessionTaobao(const SessionTaobaoOptions& options) : options_(options) {
  schema_.vertex_type_names = {"User", "Item"};
  schema_.edge_type_names = {"Click", "CoPurchase"};
  schema_.edge_endpoints = {{0, 1}, {1, 1}};
  schema_.feature_dim = options_.feature_dim;

  util::Rng rng(options_.seed);
  user_cluster_a_.resize(options_.users);
  user_cluster_b_.resize(options_.users);
  for (std::uint64_t u = 0; u < options_.users; ++u) {
    user_cluster_a_[u] = rng.Uniform(options_.clusters);
    // Drift to a different cluster.
    user_cluster_b_[u] = (user_cluster_a_[u] + 1 + rng.Uniform(options_.clusters - 1)) %
                         options_.clusters;
  }
  item_cluster_.resize(options_.items);
  for (std::uint64_t i = 0; i < options_.items; ++i) {
    item_cluster_[i] = rng.Uniform(options_.clusters);
  }
  // Index items per cluster for sampling.
  std::vector<std::vector<std::uint64_t>> items_in(options_.clusters);
  for (std::uint64_t i = 0; i < options_.items; ++i) items_in[item_cluster_[i]].push_back(i);
  // Guarantee every cluster is non-empty.
  for (std::uint64_t c = 0; c < options_.clusters; ++c) {
    if (items_in[c].empty()) {
      const std::uint64_t i = rng.Uniform(options_.items);
      item_cluster_[i] = c;
      items_in[c].push_back(i);
    }
  }

  graph::Timestamp now = options_.ts_step;
  // Vertex phase.
  for (std::uint64_t u = 0; u < options_.users; ++u) {
    graph::VertexUpdate v;
    v.type = 0;
    v.id = MakeVertexId(0, u);
    v.ts = now;
    v.feature = ClusterFeature(user_cluster_a_[u], options_.feature_dim, rng, options_.seed);
    updates_.emplace_back(std::move(v));
    now += options_.ts_step;
  }
  for (std::uint64_t i = 0; i < options_.items; ++i) {
    graph::VertexUpdate v;
    v.type = 1;
    v.id = MakeVertexId(1, i);
    v.ts = now;
    v.feature = ClusterFeature(item_cluster_[i], options_.feature_dim, rng, options_.seed);
    updates_.emplace_back(std::move(v));
    now += options_.ts_step;
  }

  // Edge phase: interleave clicks and co-purchases; drift at the midpoint.
  const std::uint64_t total_edges = options_.click_edges + options_.copurchase_edges;
  drift_ts_ = now + static_cast<graph::Timestamp>(total_edges / 2) * options_.ts_step;
  std::uint64_t clicks_left = options_.click_edges;
  std::uint64_t cop_left = options_.copurchase_edges;
  auto pick_item_in = [&](std::uint64_t cluster) {
    const auto& pool = items_in[cluster];
    return pool[rng.Uniform(pool.size())];
  };
  while (clicks_left + cop_left > 0) {
    const bool click = rng.Uniform(clicks_left + cop_left) < clicks_left;
    graph::EdgeUpdate e;
    e.ts = now;
    e.weight = 1.0f;
    if (click) {
      clicks_left--;
      e.type = 0;
      const std::uint64_t u = rng.Uniform(options_.users);
      const std::uint64_t cluster = ClusterOfUserNow(MakeVertexId(0, u), now);
      const std::uint64_t c = rng.Bernoulli(options_.in_cluster_prob)
                                  ? cluster
                                  : rng.Uniform(options_.clusters);
      e.src = MakeVertexId(0, u);
      e.dst = MakeVertexId(1, pick_item_in(c));
      clicks_.push_back(e);
    } else {
      cop_left--;
      e.type = 1;
      // Co-purchases connect same-cluster items (with a little noise).
      const std::uint64_t c = rng.Uniform(options_.clusters);
      e.src = MakeVertexId(1, pick_item_in(c));
      const std::uint64_t c2 = rng.Bernoulli(0.9) ? c : rng.Uniform(options_.clusters);
      e.dst = MakeVertexId(1, pick_item_in(c2));
    }
    updates_.emplace_back(e);
    now += options_.ts_step;
  }
}

std::uint64_t SessionTaobao::ClusterOfUserNow(graph::VertexId user, graph::Timestamp ts) const {
  const std::uint64_t u = VertexIndexOf(user);
  return ts < drift_ts_ ? user_cluster_a_[u] : user_cluster_b_[u];
}

std::uint64_t SessionTaobao::ClusterOfItem(graph::VertexId item) const {
  return item_cluster_[VertexIndexOf(item)];
}

graph::VertexId SessionTaobao::NegativeItem(util::Rng& rng, std::uint64_t avoid_cluster) const {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t i = rng.Uniform(options_.items);
    if (item_cluster_[i] != avoid_cluster) return MakeVertexId(1, i);
  }
  return MakeVertexId(1, rng.Uniform(options_.items));
}

}  // namespace helios::gen
