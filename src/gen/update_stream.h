// Deterministic replay of a dataset as a continuous stream of graph updates.
//
// §7.1: "We replay the four datasets to simulate continuously arriving
// dynamic graph updates." The stream first announces every vertex (a
// VertexUpdate with its feature — new vertices are also continuously
// interleaved in real deployments, but an upfront phase keeps the edge
// phase's endpoint population fixed, which the reservoir-distribution
// property tests rely on), then emits all edge updates in a randomly
// interleaved order across edge types, with monotonically increasing
// timestamps. Endpoints follow per-stream Zipf laws, producing the
// power-law out-degree skew of Table 1.
#pragma once

#include <cstdint>

#include "gen/datasets.h"
#include "graph/types.h"
#include "util/rng.h"

namespace helios::gen {

struct StreamOptions {
  graph::Timestamp base_ts = 1;   // first event timestamp
  graph::Timestamp ts_step = 1;   // event-time increment per update
  bool vertices_first = true;     // emit the vertex phase
};

class UpdateStream {
 public:
  UpdateStream(const DatasetSpec& spec, StreamOptions options = {});

  // Produces the next update; returns false when the stream is exhausted.
  bool Next(graph::GraphUpdate& out);
  void Reset();

  std::uint64_t TotalUpdates() const { return total_; }
  std::uint64_t Emitted() const { return emitted_; }
  const DatasetSpec& spec() const { return spec_; }

  // Convenience: materialize the remaining stream.
  std::vector<graph::GraphUpdate> Drain();

 private:
  bool NextVertex(graph::GraphUpdate& out);
  bool NextEdge(graph::GraphUpdate& out);

  DatasetSpec spec_;
  StreamOptions options_;
  util::Rng rng_;
  std::vector<util::Zipf> src_zipf_;  // per edge stream
  std::vector<util::Zipf> dst_zipf_;
  std::vector<std::uint64_t> edges_remaining_;
  std::uint64_t edges_remaining_total_ = 0;

  // Vertex phase cursor.
  graph::VertexTypeId vertex_type_ = 0;
  std::uint64_t vertex_index_ = 0;

  std::uint64_t total_ = 0;
  std::uint64_t emitted_ = 0;
  graph::Timestamp now_;
};

}  // namespace helios::gen
