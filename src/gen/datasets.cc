#include "gen/datasets.h"

#include <algorithm>

namespace helios::gen {

std::uint64_t DatasetSpec::TotalVertices() const {
  std::uint64_t n = 0;
  for (auto v : vertices_per_type) n += v;
  return n;
}

std::uint64_t DatasetSpec::TotalEdges() const {
  std::uint64_t n = 0;
  for (const auto& e : edge_streams) n += e.count;
  return n;
}

PaperStats PaperStatsFor(const std::string& dataset_name) {
  // Table 1 of the paper.
  if (dataset_name == "BI") return {1.9e9, 2.4e9, 10, 8525, 1.26};
  if (dataset_name == "INTER") return {40e6, 3.8e9, 10, 3632, 95};
  if (dataset_name == "FIN") return {2e6, 2.2e9, 10, 9831, 5.5};
  if (dataset_name == "Taobao") return {1.8e6, 8.6e6, 128, 3726, 4.8};
  return {};
}

namespace {
std::uint64_t Scaled(double published, std::uint64_t scale, std::uint64_t floor_value) {
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(published / static_cast<double>(scale)),
                                 floor_value);
}
}  // namespace

DatasetSpec MakeBI(std::uint64_t scale) {
  // LDBC-Business: Person-Knows-Person-Likes-Comment. Sparse on average
  // (avg deg 1.26) with heavy supernode skew (max 8525).
  DatasetSpec spec;
  spec.name = "BI";
  spec.schema.vertex_type_names = {"Person", "Comment"};
  spec.schema.edge_type_names = {"Knows", "Likes"};
  spec.schema.edge_endpoints = {{0, 0}, {0, 1}};
  spec.schema.feature_dim = 10;
  spec.vertices_per_type = {Scaled(0.9e9, scale, 2000), Scaled(1.0e9, scale, 2000)};
  spec.edge_streams = {
      {0, Scaled(1.0e9, scale, 4000), 0.70, 1.05},
      {1, Scaled(1.4e9, scale, 4000), 0.70, 1.10},
  };
  spec.seed = 0xB1;
  return spec;
}

DatasetSpec MakeInter(std::uint64_t scale) {
  // LDBC-Interactive: Forum-Has-Person-Knows-Person. Very dense (avg deg
  // ~95) — the default motivation/stress dataset of the paper.
  DatasetSpec spec;
  spec.name = "INTER";
  spec.schema.vertex_type_names = {"Forum", "Person"};
  spec.schema.edge_type_names = {"Has", "Knows"};
  spec.schema.edge_endpoints = {{0, 1}, {1, 1}};
  spec.schema.feature_dim = 10;
  spec.vertices_per_type = {Scaled(10e6, scale, 1000), Scaled(30e6, scale, 3000)};
  spec.edge_streams = {
      {0, Scaled(0.9e9, scale, 20000), 1.10, 1.02},
      {1, Scaled(2.9e9, scale, 60000), 0.55, 1.05},
  };
  spec.seed = 0x17;
  return spec;
}

DatasetSpec MakeFin(std::uint64_t scale) {
  // LDBC-FinBench: Account-TransferTo-Account. Few vertices, enormous edge
  // multiplicity (the paper replays edges 200x), extreme supernodes.
  DatasetSpec spec;
  spec.name = "FIN";
  spec.schema.vertex_type_names = {"Account"};
  spec.schema.edge_type_names = {"TransferTo"};
  spec.schema.edge_endpoints = {{0, 0}};
  spec.schema.feature_dim = 10;
  spec.vertices_per_type = {Scaled(2e6, scale, 1000)};
  spec.edge_streams = {
      {0, Scaled(2.2e9, scale, 50000), 1.00, 1.10},
  };
  spec.seed = 0xF1;
  return spec;
}

DatasetSpec MakeTaobao(std::uint64_t scale) {
  // Industrial e-commerce graph: User-Click-Item-CoPurchase-Item with
  // 128-dim features; small enough that the paper trains GraphSAGE on it.
  DatasetSpec spec;
  spec.name = "Taobao";
  spec.schema.vertex_type_names = {"User", "Item"};
  spec.schema.edge_type_names = {"Click", "CoPurchase"};
  spec.schema.edge_endpoints = {{0, 1}, {1, 1}};
  spec.schema.feature_dim = 128;
  spec.vertices_per_type = {Scaled(1.0e6, scale, 2000), Scaled(0.8e6, scale, 2000)};
  spec.edge_streams = {
      {0, Scaled(5.0e6, scale, 10000), 0.62, 1.10},
      {1, Scaled(3.6e6, scale, 8000), 0.62, 1.10},
  };
  spec.seed = 0x7A0;
  return spec;
}

std::vector<DatasetSpec> AllDatasets(std::uint64_t scale) {
  return {MakeBI(scale), MakeInter(scale), MakeFin(scale), MakeTaobao(std::max<std::uint64_t>(scale / 100, 1))};
}

}  // namespace helios::gen
