// Session-structured Taobao stream for the inference-accuracy experiment
// (Fig 18).
//
// The public Taobao dump is not shippable, so we synthesize a stream with
// the property the experiment depends on: *recency matters*. Users and
// items belong to latent interest clusters; a user's clicks concentrate on
// their current cluster, co-purchase edges connect same-cluster items, and
// every user's interest drifts to a new cluster midway through the stream.
// Predicting a user's next click therefore requires the *latest* sampled
// neighborhood — ingestion staleness hides the drift and measurably lowers
// link-prediction accuracy, which is exactly the effect Fig 18 plots.
//
// Vertex features carry a noisy cluster centroid, so a GraphSAGE encoder
// aggregating sampled neighborhoods can separate matching from
// non-matching (user, item) pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/datasets.h"
#include "graph/types.h"
#include "util/rng.h"

namespace helios::gen {

struct SessionTaobaoOptions {
  std::uint64_t users = 1500;
  std::uint64_t items = 1200;
  std::uint64_t clusters = 12;
  std::uint64_t click_edges = 30000;
  std::uint64_t copurchase_edges = 20000;
  double in_cluster_prob = 0.9;  // click lands in the user's current cluster
  std::size_t feature_dim = 16;
  graph::Timestamp ts_step = 50;  // 50us/event ~ 20k updates/s
  std::uint64_t seed = 0x7A0BA0;
};

class SessionTaobao {
 public:
  explicit SessionTaobao(const SessionTaobaoOptions& options);

  // Full update stream (vertices first, then interleaved edges), event
  // timestamps strictly increasing by ts_step.
  const std::vector<graph::GraphUpdate>& updates() const { return updates_; }
  // The click edges in stream order (the link-prediction targets).
  const std::vector<graph::EdgeUpdate>& clicks() const { return clicks_; }

  const graph::GraphSchema& schema() const { return schema_; }
  const SessionTaobaoOptions& options() const { return options_; }

  std::uint64_t ClusterOfUserNow(graph::VertexId user, graph::Timestamp ts) const;
  std::uint64_t ClusterOfItem(graph::VertexId item) const;

  // A random item id, biased away from `avoid_cluster` (negative sampling).
  graph::VertexId NegativeItem(util::Rng& rng, std::uint64_t avoid_cluster) const;

 private:
  SessionTaobaoOptions options_;
  graph::GraphSchema schema_;
  std::vector<graph::GraphUpdate> updates_;
  std::vector<graph::EdgeUpdate> clicks_;
  std::vector<std::uint64_t> user_cluster_a_;  // before drift
  std::vector<std::uint64_t> user_cluster_b_;  // after drift
  std::vector<std::uint64_t> item_cluster_;
  graph::Timestamp drift_ts_ = 0;  // when every user's interest switches
};

}  // namespace helios::gen
