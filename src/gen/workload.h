// Inference-request workload generators.
//
// §7.1: "each time we randomly select 10,000 vertices as seed nodes of the
// sampling queries"; the serving experiments sweep *request concurrency*
// (closed-loop clients). SeedGenerator draws seed vertices from the query's
// seed vertex-type population — uniformly, or Zipf-skewed to model hot
// accounts/users. ArrivalProcess models open-loop Poisson arrivals for the
// ingestion-side experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gen/datasets.h"
#include "graph/types.h"
#include "util/rng.h"

namespace helios::gen {

class SeedGenerator {
 public:
  // Draws from the `population` vertices of `seed_type`. zipf_s <= 0 means
  // uniform.
  SeedGenerator(graph::VertexTypeId seed_type, std::uint64_t population, double zipf_s,
                std::uint64_t seed);

  graph::VertexId Next();
  // A fixed batch of distinct-ish seeds (the paper's 10,000-seed batches).
  std::vector<graph::VertexId> Batch(std::size_t n);

 private:
  graph::VertexTypeId seed_type_;
  std::uint64_t population_;
  util::Rng rng_;
  std::optional<util::Zipf> zipf_;
};

// Deterministic zipfian hot-key query scenario: the access skew the
// computation-reuse serving tier feeds on (hot accounts are re-queried, so
// their hop-1 aggregates stay cached). Same (alpha, seed) always produces
// the same seed sequence, so cache-sweep figures are reproducible run to
// run. alpha <= 0 degenerates to uniform. Exposed as the shared bench
// flags zipf=<alpha> / zipf-seed=<n> (bench/harness.h) so fig16/fig19
// compose skew via flags instead of new mains.
struct QuerySkew {
  double alpha = 0.0;        // Zipf exponent; 0 = uniform
  std::uint64_t seed = 77;   // RNG seed (determinism knob)
};

// A batch of `n` seed vertices drawn Zipf(skew.alpha) over the population.
std::vector<graph::VertexId> HotKeyBatch(graph::VertexTypeId seed_type, std::uint64_t population,
                                         const QuerySkew& skew, std::size_t n);

// Open-loop Poisson arrival process over virtual microseconds.
class ArrivalProcess {
 public:
  ArrivalProcess(double events_per_second, std::uint64_t seed)
      : rate_per_us_(events_per_second / 1e6), rng_(seed) {}

  // Time of the next arrival strictly after `now`.
  graph::Timestamp NextAfter(graph::Timestamp now) {
    const double gap = rng_.Exponential(rate_per_us_);
    return now + std::max<graph::Timestamp>(1, static_cast<graph::Timestamp>(gap));
  }

 private:
  double rate_per_us_;
  util::Rng rng_;
};

// Deterministic diurnal load curve: a raised-cosine "day" between a base
// (overnight trough) and a peak (prime-time) rate,
//
//   rate(t) = base + (peak - base) * 0.5 * (1 - cos(2*pi*(t/period + phase)))
//
// so t = 0 with phase = 0 starts at the trough and the peak lands at half
// the period. Same spec -> same curve and (via DiurnalArrivals) the same
// arrival timestamps, which is what lets fig21 compare an elastic run
// against a no-migration golden run on an identical workload. Composes with
// QuerySkew: the curve decides *when* a query arrives, the skew decides
// *which* seed it hits — both ride the shared bench flags
// (diurnal-base= / diurnal-peak= / diurnal-period-s= / zipf=, bench/harness.h).
struct DiurnalSpec {
  double base_qps = 0;     // trough rate (events/second)
  double peak_qps = 0;     // prime-time rate
  std::int64_t period_us = 86'400'000'000;  // one simulated day
  double phase = 0.0;      // fraction of a period to shift the trough
  std::uint64_t seed = 77;
  bool Enabled() const { return peak_qps > 0; }
};

double DiurnalRateAtUs(const DiurnalSpec& spec, std::int64_t t_us);

// Open-loop arrivals whose instantaneous rate follows the diurnal curve:
// a Poisson process at the peak rate, thinned to rate(t)/peak (Lewis &
// Shedler) — exact for a time-varying Poisson process and deterministic
// given the seed.
class DiurnalArrivals {
 public:
  explicit DiurnalArrivals(const DiurnalSpec& spec) : spec_(spec), rng_(spec.seed) {}

  // Time of the next arrival strictly after `now` (virtual microseconds).
  std::int64_t NextAfter(std::int64_t now);

  double RateAtUs(std::int64_t t_us) const { return DiurnalRateAtUs(spec_, t_us); }
  const DiurnalSpec& spec() const { return spec_; }

 private:
  DiurnalSpec spec_;
  util::Rng rng_;
};

}  // namespace helios::gen
