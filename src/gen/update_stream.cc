#include "gen/update_stream.h"

namespace helios::gen {

UpdateStream::UpdateStream(const DatasetSpec& spec, StreamOptions options)
    : spec_(spec), options_(options), rng_(spec.seed), now_(options.base_ts) {
  for (const auto& es : spec_.edge_streams) {
    const auto& ep = spec_.schema.edge_endpoints[es.type];
    src_zipf_.emplace_back(spec_.vertices_per_type[ep.src_type], es.src_zipf);
    dst_zipf_.emplace_back(spec_.vertices_per_type[ep.dst_type], es.dst_zipf);
    edges_remaining_.push_back(es.count);
    edges_remaining_total_ += es.count;
  }
  total_ = edges_remaining_total_ + (options_.vertices_first ? spec_.TotalVertices() : 0);
}

void UpdateStream::Reset() {
  rng_.Seed(spec_.seed);
  edges_remaining_total_ = 0;
  for (std::size_t i = 0; i < spec_.edge_streams.size(); ++i) {
    edges_remaining_[i] = spec_.edge_streams[i].count;
    edges_remaining_total_ += edges_remaining_[i];
  }
  vertex_type_ = 0;
  vertex_index_ = 0;
  emitted_ = 0;
  now_ = options_.base_ts;
}

bool UpdateStream::Next(graph::GraphUpdate& out) {
  if (options_.vertices_first && NextVertex(out)) return true;
  return NextEdge(out);
}

bool UpdateStream::NextVertex(graph::GraphUpdate& out) {
  while (vertex_type_ < spec_.vertices_per_type.size() &&
         vertex_index_ >= spec_.vertices_per_type[vertex_type_]) {
    vertex_type_++;
    vertex_index_ = 0;
  }
  if (vertex_type_ >= spec_.vertices_per_type.size()) return false;

  graph::VertexUpdate v;
  v.type = vertex_type_;
  v.id = MakeVertexId(vertex_type_, vertex_index_);
  v.ts = now_;
  v.feature.resize(spec_.schema.feature_dim);
  for (auto& f : v.feature) f = static_cast<float>(rng_.UniformDouble()) * 2.0f - 1.0f;
  out = std::move(v);

  vertex_index_++;
  now_ += options_.ts_step;
  emitted_++;
  return true;
}

bool UpdateStream::NextEdge(graph::GraphUpdate& out) {
  if (edges_remaining_total_ == 0) return false;
  // Pick a stream with probability proportional to its remaining edge
  // budget — a deterministic interleave matching the paper's replay of
  // multiple edge files in timestamp order.
  std::uint64_t pick = rng_.Uniform(edges_remaining_total_);
  std::size_t stream = 0;
  while (pick >= edges_remaining_[stream]) {
    pick -= edges_remaining_[stream];
    stream++;
  }

  const auto& es = spec_.edge_streams[stream];
  const auto& ep = spec_.schema.edge_endpoints[es.type];
  graph::EdgeUpdate e;
  e.type = es.type;
  e.src = MakeVertexId(ep.src_type, src_zipf_[stream].Sample(rng_));
  e.dst = MakeVertexId(ep.dst_type, dst_zipf_[stream].Sample(rng_));
  if (e.src == e.dst) {
    // Resample once to avoid most self-loops; a rare residual self-loop is
    // harmless (real logs contain them too).
    e.dst = MakeVertexId(ep.dst_type, dst_zipf_[stream].Sample(rng_));
  }
  e.ts = now_;
  e.weight = static_cast<float>(rng_.UniformDouble());
  out = e;

  edges_remaining_[stream]--;
  edges_remaining_total_--;
  now_ += options_.ts_step;
  emitted_++;
  return true;
}

std::vector<graph::GraphUpdate> UpdateStream::Drain() {
  std::vector<graph::GraphUpdate> all;
  all.reserve(total_ - emitted_);
  graph::GraphUpdate u;
  while (Next(u)) all.push_back(std::move(u));
  return all;
}

}  // namespace helios::gen
