#include "gen/workload.h"

namespace helios::gen {

SeedGenerator::SeedGenerator(graph::VertexTypeId seed_type, std::uint64_t population,
                             double zipf_s, std::uint64_t seed)
    : seed_type_(seed_type), population_(population), rng_(seed) {
  if (zipf_s > 0) zipf_.emplace(population_, zipf_s);
}

graph::VertexId SeedGenerator::Next() {
  const std::uint64_t index = zipf_ ? zipf_->Sample(rng_) : rng_.Uniform(population_);
  return MakeVertexId(seed_type_, index);
}

std::vector<graph::VertexId> SeedGenerator::Batch(std::size_t n) {
  std::vector<graph::VertexId> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(Next());
  return seeds;
}

std::vector<graph::VertexId> HotKeyBatch(graph::VertexTypeId seed_type, std::uint64_t population,
                                         const QuerySkew& skew, std::size_t n) {
  SeedGenerator gen(seed_type, population, skew.alpha, skew.seed);
  return gen.Batch(n);
}

}  // namespace helios::gen
