#include "gen/workload.h"

#include <algorithm>
#include <cmath>

namespace helios::gen {

SeedGenerator::SeedGenerator(graph::VertexTypeId seed_type, std::uint64_t population,
                             double zipf_s, std::uint64_t seed)
    : seed_type_(seed_type), population_(population), rng_(seed) {
  if (zipf_s > 0) zipf_.emplace(population_, zipf_s);
}

graph::VertexId SeedGenerator::Next() {
  const std::uint64_t index = zipf_ ? zipf_->Sample(rng_) : rng_.Uniform(population_);
  return MakeVertexId(seed_type_, index);
}

std::vector<graph::VertexId> SeedGenerator::Batch(std::size_t n) {
  std::vector<graph::VertexId> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(Next());
  return seeds;
}

double DiurnalRateAtUs(const DiurnalSpec& spec, std::int64_t t_us) {
  if (!spec.Enabled() || spec.period_us <= 0) return spec.base_qps;
  const double base = spec.base_qps;
  const double x = static_cast<double>(t_us % spec.period_us) /
                       static_cast<double>(spec.period_us) +
                   spec.phase;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double shape = 0.5 * (1.0 - std::cos(kTwoPi * x));
  return base + (spec.peak_qps - base) * shape;
}

std::int64_t DiurnalArrivals::NextAfter(std::int64_t now) {
  const double peak = std::max(spec_.peak_qps, spec_.base_qps);
  if (peak <= 0) return now + 1;
  const double peak_per_us = peak / 1e6;
  // Thinning: candidate gaps at the peak rate, accepted with probability
  // rate(t)/peak. Bounded pass count: each candidate consumes RNG state, so
  // the sequence depends only on (spec, seed).
  std::int64_t t = now;
  for (;;) {
    const double gap = rng_.Exponential(peak_per_us);
    t += std::max<std::int64_t>(1, static_cast<std::int64_t>(gap));
    const double accept = DiurnalRateAtUs(spec_, t) / peak;
    if (rng_.UniformDouble() < accept) return t;
  }
}

std::vector<graph::VertexId> HotKeyBatch(graph::VertexTypeId seed_type, std::uint64_t population,
                                         const QuerySkew& skew, std::size_t n) {
  SeedGenerator gen(seed_type, population, skew.alpha, skew.seed);
  return gen.Batch(n);
}

}  // namespace helios::gen
