// Synthetic dataset specifications matching the *shape* of the paper's
// datasets (Table 1): LDBC-Business (BI), LDBC-Interactive (INTER),
// LDBC-FinBench (FIN) and the industrial Taobao graph.
//
// We cannot ship the proprietary/billion-edge originals, so each spec
// records the published statistics (vertex/edge counts, feature dim, degree
// skew) and a generator reproduces a scaled-down stream with the same
// vertex:edge ratio, power-law out-degree (calibrated so max/avg degree
// ratios are of the paper's order) and monotonically increasing event
// timestamps. `scale` divides the published counts; the default 2000 gives
// million-edge streams that run in seconds on one core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace helios::gen {

// Vertex ids encode their type in the top 16 bits so heterogeneous graphs
// share one id space (matches how Helios partitions by plain vertex id).
inline graph::VertexId MakeVertexId(graph::VertexTypeId type, std::uint64_t index) {
  return (static_cast<std::uint64_t>(type) << 48) | index;
}
inline graph::VertexTypeId VertexTypeOf(graph::VertexId id) {
  return static_cast<graph::VertexTypeId>(id >> 48);
}
inline std::uint64_t VertexIndexOf(graph::VertexId id) {
  return id & ((1ULL << 48) - 1);
}

// One homogeneous edge stream inside a dataset (e.g. all Click edges).
struct EdgeStreamSpec {
  graph::EdgeTypeId type = 0;
  std::uint64_t count = 0;
  // Zipf exponents controlling source activity / destination popularity
  // skew. Higher = more skew (more supernodes, §3.1).
  double src_zipf = 1.0;
  double dst_zipf = 1.0;
};

struct DatasetSpec {
  std::string name;
  graph::GraphSchema schema;
  std::vector<std::uint64_t> vertices_per_type;  // indexed by VertexTypeId
  std::vector<EdgeStreamSpec> edge_streams;
  std::uint64_t seed = 1;

  std::uint64_t TotalVertices() const;
  std::uint64_t TotalEdges() const;
};

// Published Table 1 statistics, kept for EXPERIMENTS.md comparisons.
struct PaperStats {
  double vertices = 0, edges = 0;
  std::size_t feature_dim = 0;
  double max_deg = 0, avg_deg = 0;
};
PaperStats PaperStatsFor(const std::string& dataset_name);

// Factories. `scale` divides the published sizes (>= 1).
DatasetSpec MakeBI(std::uint64_t scale = 2000);
DatasetSpec MakeInter(std::uint64_t scale = 2000);
DatasetSpec MakeFin(std::uint64_t scale = 2000);
DatasetSpec MakeTaobao(std::uint64_t scale = 10);  // already small in the paper

// All four, in Table 1 order.
std::vector<DatasetSpec> AllDatasets(std::uint64_t scale = 2000);

}  // namespace helios::gen
