// Actor-based execution engine with named thread pools.
//
// §4.2/§4.3: Helios "pipelines IO and computation ... and minimizes the
// interference among different types of workloads by isolating them into
// distinct threads, which are implemented by a distributed actor-based
// framework" — polling threads, sampling threads, publisher threads on the
// sampling side; polling / data-updating / serving threads on the serving
// side. "Helios can prioritize workloads by assigning them to a larger
// thread pool."
//
// This library provides exactly that: an ActorSystem hosting named pools of
// threads; each Actor is pinned to one pool and processes its mailbox
// serially (one message at a time, CP.2: actor state needs no locks), while
// different actors on the same pool run concurrently. Messages are
// type-erased closures bound by the typed Send<> helpers of each actor.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"
#include "util/thread_pool.h"

namespace helios::actor {

class ActorSystem;

// Base class. Derived actors expose typed methods and enqueue work through
// Tell(). All closures for one actor run strictly serially.
class Actor {
 public:
  virtual ~Actor() = default;

  // Enqueues fn into this actor's mailbox. Returns false after the system
  // began shutdown. Never blocks.
  bool Tell(std::function<void()> fn);

  // Messages processed so far (for tests / metrics).
  std::uint64_t processed_count() const { return processed_.load(std::memory_order_relaxed); }
  std::size_t MailboxDepth() const;

  // Fault-injection: permanently stops this actor and discards everything
  // still queued (a crash loses in-flight mailbox state by design — the
  // recovery path replays it from the durable log instead). Returns the
  // number of messages dropped. A slice already running on the pool finishes
  // its current closure; subsequent Tell() calls return false.
  std::size_t Kill();

 private:
  friend class ActorSystem;
  void DrainSome();

  ActorSystem* system_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
  std::mutex mailbox_mutex_;
  std::deque<std::function<void()>> mailbox_;
  bool scheduled_ = false;   // a drain task is queued/running on the pool
  bool stopped_ = false;
  std::atomic<std::uint64_t> processed_{0};
  // Max messages drained per scheduling slice; keeps long mailboxes from
  // starving other actors on the same pool.
  static constexpr std::size_t kSliceBudget = 256;
};

// Hosts named pools and the actors pinned to them.
class ActorSystem {
 public:
  ActorSystem() = default;
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  // Creates a pool; must happen before actors are attached to it.
  util::Status AddPool(const std::string& name, std::size_t num_threads);

  // Attaches an actor (constructed by the caller, ownership shared) to the
  // named pool. The actor starts receiving messages immediately.
  util::Status Attach(const std::shared_ptr<Actor>& actor, const std::string& pool);

  // Detaches an actor (typically one that was Kill()ed) so Shutdown/Quiesce
  // no longer consider it. The caller keeps its own shared_ptr; the actor
  // stays bound to its (possibly stopped) pool and keeps refusing Tell().
  void Detach(const std::shared_ptr<Actor>& actor);

  // Tears down one pool: stops intake, runs queued slices, joins its
  // threads, and removes the name so AddPool() can recreate it — the
  // restart half of node-level fault injection. Actors still pinned to the
  // pool must be Kill()ed/Detach()ed first; a NotFound is returned for an
  // unknown name.
  util::Status StopPool(const std::string& name);

  // Stops accepting new messages, drains every mailbox, joins all threads.
  void Shutdown();

  // Blocks until all attached actors have empty mailboxes and no running
  // slice. Spin+sleep; used by tests and batch drivers, not hot paths.
  void Quiesce() const;

  bool shutting_down() const { return shutting_down_.load(std::memory_order_acquire); }

 private:
  friend class Actor;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<util::ThreadPool>> pools_;
  std::vector<std::shared_ptr<Actor>> actors_;
  std::atomic<bool> shutting_down_{false};
  mutable std::atomic<std::uint64_t> in_flight_{0};  // scheduled drain slices
};

}  // namespace helios::actor
