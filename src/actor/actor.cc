#include "actor/actor.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace helios::actor {

bool Actor::Tell(std::function<void()> fn) {
  if (system_ == nullptr || system_->shutting_down()) return false;
  bool need_schedule = false;
  {
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    if (stopped_) return false;
    mailbox_.push_back(std::move(fn));
    if (!scheduled_) {
      scheduled_ = true;
      need_schedule = true;
    }
  }
  if (need_schedule) {
    system_->in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (!pool_->Submit([this] { DrainSome(); })) {
      // Pool already shut down: undo the scheduling claim.
      system_->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lock(mailbox_mutex_);
      scheduled_ = false;
      return false;
    }
  }
  return true;
}

std::size_t Actor::MailboxDepth() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mailbox_mutex_));
  return mailbox_.size();
}

std::size_t Actor::Kill() {
  std::lock_guard<std::mutex> lock(mailbox_mutex_);
  stopped_ = true;
  const std::size_t dropped = mailbox_.size();
  mailbox_.clear();
  // A queued drain slice (scheduled_ == true) will observe the empty
  // mailbox, clear scheduled_ and release its in_flight_ claim itself.
  return dropped;
}

void Actor::DrainSome() {
  std::size_t budget = kSliceBudget;
  while (budget > 0) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mailbox_mutex_);
      if (mailbox_.empty()) {
        scheduled_ = false;
        system_->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      fn = std::move(mailbox_.front());
      mailbox_.pop_front();
    }
    fn();
    processed_.fetch_add(1, std::memory_order_relaxed);
    --budget;
  }
  // Budget exhausted but mailbox non-empty: reschedule so peers on this
  // pool get a turn. If the pool is gone we are shutting down; the system's
  // Shutdown drains remaining messages synchronously.
  if (!pool_->Submit([this] { DrainSome(); })) {
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    scheduled_ = false;
    system_->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ActorSystem::~ActorSystem() { Shutdown(); }

util::Status ActorSystem::AddPool(const std::string& name, std::size_t num_threads) {
  if (num_threads == 0) return util::Status::InvalidArgument("pool needs >= 1 thread");
  std::lock_guard<std::mutex> lock(mutex_);
  if (pools_.count(name)) return util::Status::AlreadyExists("pool exists: " + name);
  pools_.emplace(name, std::make_unique<util::ThreadPool>(name, num_threads));
  return util::Status::Ok();
}

util::Status ActorSystem::Attach(const std::shared_ptr<Actor>& actor, const std::string& pool) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pools_.find(pool);
  if (it == pools_.end()) return util::Status::NotFound("no such pool: " + pool);
  if (actor->system_ != nullptr) return util::Status::FailedPrecondition("actor already attached");
  actor->system_ = this;
  actor->pool_ = it->second.get();
  actors_.push_back(actor);
  return util::Status::Ok();
}

void ActorSystem::Detach(const std::shared_ptr<Actor>& actor) {
  std::lock_guard<std::mutex> lock(mutex_);
  actors_.erase(std::remove(actors_.begin(), actors_.end(), actor), actors_.end());
}

util::Status ActorSystem::StopPool(const std::string& name) {
  std::unique_ptr<util::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pools_.find(name);
    if (it == pools_.end()) return util::Status::NotFound("no such pool: " + name);
    pool = std::move(it->second);
    pools_.erase(it);
  }
  // Outside the lock: Shutdown runs queued slices on the worker threads and
  // joins them, which may take as long as the slowest in-flight closure.
  pool->Shutdown();
  return util::Status::Ok();
}

void ActorSystem::Shutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;

  std::vector<std::shared_ptr<Actor>> actors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    actors = actors_;
  }
  // Stop pools first (drains queued slices), then drain leftover mailbox
  // entries synchronously so no message is silently dropped.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, pool] : pools_) pool->Shutdown();
  }
  for (auto& actor : actors) {
    std::deque<std::function<void()>> leftovers;
    {
      std::lock_guard<std::mutex> lock(actor->mailbox_mutex_);
      leftovers.swap(actor->mailbox_);
      actor->stopped_ = true;
    }
    for (auto& fn : leftovers) {
      fn();
      actor->processed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ActorSystem::Quiesce() const {
  while (true) {
    if (in_flight_.load(std::memory_order_acquire) == 0) {
      bool all_empty = true;
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& actor : actors_) {
        if (actor->MailboxDepth() != 0) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace helios::actor
