// Load-aware shard rebalancing and autoscaling policy.
//
// Pure decision logic, runtime-agnostic like ft::Supervisor: the caller
// feeds explicit `now` values plus per-shard load samples (the
// shard.qps / shard.delta_bytes / shard.serve_p99_us gauges published by
// obs::TelemetryHub::WindowLoads), and Tick() returns a Plan — which shards
// to migrate where, how many nodes the tier should run, and which nodes to
// drain. The runtime (ThreadedCluster or the DES elastic engine) owns the
// mechanics: it executes migrations through ShardMigrator and adds/retires
// nodes.
//
// Stability knobs (all deterministic — same inputs, same plan):
//   * hysteresis watermarks: a node only donates when its load exceeds
//     high_watermark x mean, and a move must land the shard on a node whose
//     load stays below the donor's — no thrash from near-balanced spreads;
//   * per-shard cooldown: a shard that just moved is pinned for
//     shard_cooldown_us, so one hot shard cannot ping-pong;
//   * migration budget: at most max_concurrent_migrations in flight
//     (in-flight count is supplied by the caller's migrator);
//   * scale hysteresis: node count grows only above scale_up_util and
//     shrinks only below scale_down_util of aggregate capacity, with
//     draining nodes evacuated before retirement (drain-then-retire).
#pragma once

#include <cstdint>
#include <vector>

#include "elastic/shard_map.h"
#include "obs/metrics.h"

namespace helios::elastic {

// One shard's load over the telemetry window (obs::TelemetryHub::LaneLoad,
// re-labelled: lane == logical shard for the sampling tier).
struct ShardLoad {
  std::uint32_t shard = 0;
  double qps = 0;          // events/s through the shard (updates or queries)
  double bytes_per_s = 0;  // dissemination bytes emitted per second
  std::uint64_t p99_us = 0;
};

struct RebalancerOptions {
  // A node donates when its load > high_watermark * mean-of-active-nodes.
  double high_watermark = 1.25;
  // Scale-down is considered only when utilization < scale_down_util;
  // scale-up when utilization > scale_up_util (utilization = total load /
  // (active nodes * node_capacity)).
  double scale_up_util = 0.80;
  double scale_down_util = 0.40;
  // 0 disables autoscaling (pure rebalancing between a fixed node set).
  double node_capacity_qps = 0;
  std::uint32_t min_nodes = 1;
  std::uint32_t max_nodes = 0;  // 0 = no cap beyond the map's node universe
  std::uint32_t max_concurrent_migrations = 2;
  std::int64_t shard_cooldown_us = 2'000'000;
  std::int64_t decision_interval_us = 1'000'000;
  obs::MetricsRegistry* registry = nullptr;  // elastic.rebalancer.* metrics
};

struct MigrationOrder {
  std::uint32_t shard = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

struct Plan {
  std::vector<MigrationOrder> migrations;
  // Desired active-node count after this tick (== current when no opinion).
  std::uint32_t target_nodes = 0;
  // Nodes to evacuate and retire (already excluded from target_nodes).
  std::vector<std::uint32_t> drain;
  bool acted = false;  // false: interval not elapsed, inputs empty, or balanced
};

// Caller-maintained node lifecycle state for one tier.
struct NodeSet {
  // active[n]: node n hosts shards and receives new ones.
  std::vector<std::uint8_t> active;
  // draining[n]: node n is being evacuated — it donates every shard and
  // never receives; the runtime retires it once ShardsOf(n) is empty.
  std::vector<std::uint8_t> draining;

  explicit NodeSet(std::uint32_t nodes, std::uint32_t initially_active)
      : active(nodes, 0), draining(nodes, 0) {
    for (std::uint32_t n = 0; n < nodes && n < initially_active; ++n) active[n] = 1;
  }
  std::uint32_t ActiveCount() const {
    std::uint32_t c = 0;
    for (std::size_t n = 0; n < active.size(); ++n)
      if (active[n] && !draining[n]) ++c;
    return c;
  }
};

class Rebalancer {
 public:
  explicit Rebalancer(RebalancerOptions options);

  // Computes the next plan. `loads` need not cover every shard (cold shards
  // may be absent); `view` is the placement the loads were measured under;
  // `in_flight` is the migrator's current in-flight count (budget shared
  // between rebalancing moves and drain evacuations).
  Plan Tick(std::int64_t now_us, const std::vector<ShardLoad>& loads,
            const ShardMap::Snapshot& view, const NodeSet& nodes, std::uint32_t in_flight);

  // Records that `shard` started moving (starts its cooldown window).
  void NoteMigration(std::uint32_t shard, std::int64_t now_us);

  const RebalancerOptions& options() const { return options_; }

 private:
  bool InCooldown(std::uint32_t shard, std::int64_t now_us) const;

  RebalancerOptions options_;
  std::int64_t last_decision_us_ = INT64_MIN;
  std::vector<std::int64_t> last_move_us_;  // per shard, lazily sized

  obs::Counter* m_ticks_ = nullptr;
  obs::Counter* m_moves_planned_ = nullptr;
  obs::Gauge* m_target_nodes_ = nullptr;
  obs::Gauge* m_imbalance_bp_ = nullptr;  // max node load / mean, basis points
};

}  // namespace helios::elastic
