// ShardMigrator — the handoff-protocol ledger.
//
// One migration moves a logical shard between nodes without losing or
// double-applying a single delta (docs/ELASTICITY.md):
//
//   kCheckpointing  source serializes the shard (SamplingShardCore::
//                   Serialize) at log position P
//   kTransferring   checkpoint bytes travel to the destination
//   kReplaying      destination installs the checkpoint and replays the
//                   shard's update log from P (Broker::ReplayFrom); replayed
//                   re-emissions carry the checkpointed epoch/seqs, so
//                   receivers fence them (ft::EpochFence) — exactly-once
//   kEpochBumped    the destination core arms its supervisor-granted epoch
//                   (BumpEpoch at the replay frame boundary); post-cutover
//                   emissions carry the new epoch
//   kFlipped        the versioned ShardMap publishes the new owner; caches
//                   keyed to the old placement are flushed
//   kDone           source copy torn down
//
// The migrator itself owns no mechanics — runtimes (ThreadedCluster, the
// DES elastic engine) drive the steps and record transitions here. What it
// does own: the concurrency budget, the per-migration bookkeeping
// (positions, bytes, replay counts, timings), the elastic.* metrics, and —
// critically — the crash-convergence contract: a coordinator that dies
// between the epoch bump and the map flip leaves a record in
// `NeedingFlip()`, and re-driving those through Flip() is idempotent, so a
// restarted control plane always converges to a flipped map rather than a
// half-moved shard.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "elastic/shard_map.h"
#include "obs/metrics.h"

namespace helios::elastic {

enum class MigrationState : std::uint8_t {
  kCheckpointing = 0,
  kTransferring,
  kReplaying,
  kEpochBumped,
  kFlipped,
  kDone,
  kAborted,
};

const char* MigrationStateName(MigrationState s);

struct MigrationRecord {
  std::uint64_t id = 0;
  std::uint32_t shard = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  MigrationState state = MigrationState::kCheckpointing;
  std::int64_t started_us = 0;
  std::int64_t finished_us = 0;
  std::uint64_t ckpt_pos = 0;    // applied log offset the checkpoint captured
  std::uint64_t ckpt_bytes = 0;  // serialized shard size shipped on the wire
  std::uint64_t replayed = 0;    // log records re-applied on the destination
  std::uint32_t epoch = 0;       // re-admission epoch armed on the new owner
  std::uint64_t map_version = 0; // version published by the flip (0 until)
};

class ShardMigrator {
 public:
  struct Options {
    std::uint32_t max_concurrent = 2;
    obs::MetricsRegistry* registry = nullptr;
  };

  // `map` must outlive the migrator; Flip() publishes through it.
  ShardMigrator(Options options, ShardMap* map);

  // Opens a migration. Returns 0 when refused (budget exhausted, the shard
  // is already in flight, or from == to); otherwise the migration id.
  std::uint64_t Begin(std::uint32_t shard, std::uint32_t from, std::uint32_t to,
                      std::int64_t now_us);

  // Records a forward state transition (monotonic; backwards moves are
  // ignored so replayed/duplicate notifications are harmless).
  void Advance(std::uint64_t id, MigrationState state);
  void NoteCheckpoint(std::uint64_t id, std::uint64_t pos, std::uint64_t bytes);
  void NoteReplayed(std::uint64_t id, std::uint64_t records);
  void NoteEpoch(std::uint64_t id, std::uint32_t epoch);

  // Publishes the new owner through the ShardMap (exactly once per
  // migration — a second call is a no-op returning the already-published
  // version). Returns the map version the flip produced.
  std::uint64_t Flip(std::uint64_t id);

  void Complete(std::uint64_t id, std::int64_t now_us);
  void Abort(std::uint64_t id, std::int64_t now_us);

  // Crash convergence: migrations whose epoch is armed but whose flip never
  // published (state == kEpochBumped). A recovering coordinator re-drives
  // these through Flip() + Complete().
  std::vector<MigrationRecord> NeedingFlip() const;

  std::uint32_t InFlight() const;
  // True when `shard` has a migration in flight (admission guard).
  bool Migrating(std::uint32_t shard) const;
  MigrationRecord Get(std::uint64_t id) const;  // zeroed record if unknown
  std::vector<MigrationRecord> History() const;

  const Options& options() const { return options_; }

 private:
  MigrationRecord* FindLocked(std::uint64_t id);
  bool TerminalLocked(const MigrationRecord& r) const {
    return r.state == MigrationState::kDone || r.state == MigrationState::kAborted;
  }

  Options options_;
  ShardMap* map_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::vector<MigrationRecord> records_;

  obs::Counter* m_started_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_aborted_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_ckpt_bytes_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Gauge* m_map_version_ = nullptr;
  obs::LatencyMetric* m_migration_us_ = nullptr;
};

}  // namespace helios::elastic
