#include "elastic/migrator.h"

namespace helios::elastic {

const char* MigrationStateName(MigrationState s) {
  switch (s) {
    case MigrationState::kCheckpointing: return "checkpointing";
    case MigrationState::kTransferring: return "transferring";
    case MigrationState::kReplaying: return "replaying";
    case MigrationState::kEpochBumped: return "epoch-bumped";
    case MigrationState::kFlipped: return "flipped";
    case MigrationState::kDone: return "done";
    case MigrationState::kAborted: return "aborted";
  }
  return "?";
}

ShardMigrator::ShardMigrator(Options options, ShardMap* map) : options_(options), map_(map) {
  if (options_.registry != nullptr) {
    m_started_ = options_.registry->GetCounter("elastic.migrations_started");
    m_completed_ = options_.registry->GetCounter("elastic.migrations_completed");
    m_aborted_ = options_.registry->GetCounter("elastic.migrations_aborted");
    m_replayed_ = options_.registry->GetCounter("elastic.records_replayed");
    m_ckpt_bytes_ = options_.registry->GetCounter("elastic.ckpt_bytes_moved");
    m_inflight_ = options_.registry->GetGauge("elastic.migrations_inflight");
    m_map_version_ = options_.registry->GetGauge("elastic.map_version");
    m_map_version_->Set(static_cast<std::int64_t>(map_->version()));
  }
}

MigrationRecord* ShardMigrator::FindLocked(std::uint64_t id) {
  for (MigrationRecord& r : records_)
    if (r.id == id) return &r;
  return nullptr;
}

std::uint64_t ShardMigrator::Begin(std::uint32_t shard, std::uint32_t from, std::uint32_t to,
                                   std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (from == to) return 0;
  std::uint32_t inflight = 0;
  for (const MigrationRecord& r : records_) {
    if (TerminalLocked(r)) continue;
    if (r.shard == shard) return 0;  // one migration per shard at a time
    ++inflight;
  }
  if (inflight >= options_.max_concurrent) return 0;
  MigrationRecord r;
  r.id = next_id_++;
  r.shard = shard;
  r.from = from;
  r.to = to;
  r.state = MigrationState::kCheckpointing;
  r.started_us = now_us;
  records_.push_back(r);
  if (m_started_ != nullptr) m_started_->Add(1);
  if (m_inflight_ != nullptr) m_inflight_->Set(inflight + 1);
  return r.id;
}

void ShardMigrator::Advance(std::uint64_t id, MigrationState state) {
  std::lock_guard<std::mutex> lock(mutex_);
  MigrationRecord* r = FindLocked(id);
  if (r == nullptr || TerminalLocked(*r)) return;
  if (state > r->state) r->state = state;
}

void ShardMigrator::NoteCheckpoint(std::uint64_t id, std::uint64_t pos, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  MigrationRecord* r = FindLocked(id);
  if (r == nullptr) return;
  r->ckpt_pos = pos;
  r->ckpt_bytes = bytes;
  if (m_ckpt_bytes_ != nullptr) m_ckpt_bytes_->Add(bytes);
}

void ShardMigrator::NoteReplayed(std::uint64_t id, std::uint64_t records) {
  std::lock_guard<std::mutex> lock(mutex_);
  MigrationRecord* r = FindLocked(id);
  if (r == nullptr) return;
  r->replayed += records;
  if (m_replayed_ != nullptr) m_replayed_->Add(records);
}

void ShardMigrator::NoteEpoch(std::uint64_t id, std::uint32_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  MigrationRecord* r = FindLocked(id);
  if (r != nullptr) r->epoch = epoch;
}

std::uint64_t ShardMigrator::Flip(std::uint64_t id) {
  std::uint32_t shard = 0, to = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MigrationRecord* r = FindLocked(id);
    if (r == nullptr || r->state == MigrationState::kAborted) return 0;
    if (r->map_version != 0) return r->map_version;  // idempotent re-drive
    shard = r->shard;
    to = r->to;
  }
  std::uint64_t version = map_->Flip(shard, to);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MigrationRecord* r = FindLocked(id);
    if (r != nullptr) {
      r->map_version = version;
      if (MigrationState::kFlipped > r->state) r->state = MigrationState::kFlipped;
    }
  }
  if (m_map_version_ != nullptr) m_map_version_->Set(static_cast<std::int64_t>(version));
  return version;
}

void ShardMigrator::Complete(std::uint64_t id, std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  MigrationRecord* r = FindLocked(id);
  if (r == nullptr || TerminalLocked(*r)) return;
  r->state = MigrationState::kDone;
  r->finished_us = now_us;
  if (m_completed_ != nullptr) m_completed_->Add(1);
  if (m_migration_us_ == nullptr && options_.registry != nullptr)
    m_migration_us_ = options_.registry->GetLatency("elastic.migration_us");
  if (m_migration_us_ != nullptr && now_us >= r->started_us)
    m_migration_us_->Record(static_cast<std::uint64_t>(now_us - r->started_us));
  if (m_inflight_ != nullptr) {
    std::uint32_t inflight = 0;
    for (const MigrationRecord& q : records_)
      if (!TerminalLocked(q)) ++inflight;
    m_inflight_->Set(inflight);
  }
}

void ShardMigrator::Abort(std::uint64_t id, std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  MigrationRecord* r = FindLocked(id);
  if (r == nullptr || TerminalLocked(*r)) return;
  r->state = MigrationState::kAborted;
  r->finished_us = now_us;
  if (m_aborted_ != nullptr) m_aborted_->Add(1);
  if (m_inflight_ != nullptr) {
    std::uint32_t inflight = 0;
    for (const MigrationRecord& q : records_)
      if (!TerminalLocked(q)) ++inflight;
    m_inflight_->Set(inflight);
  }
}

std::vector<MigrationRecord> ShardMigrator::NeedingFlip() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MigrationRecord> out;
  for (const MigrationRecord& r : records_)
    if (r.state == MigrationState::kEpochBumped) out.push_back(r);
  return out;
}

std::uint32_t ShardMigrator::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t inflight = 0;
  for (const MigrationRecord& r : records_)
    if (!TerminalLocked(r)) ++inflight;
  return inflight;
}

bool ShardMigrator::Migrating(std::uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const MigrationRecord& r : records_)
    if (r.shard == shard && !TerminalLocked(r)) return true;
  return false;
}

MigrationRecord ShardMigrator::Get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const MigrationRecord& r : records_)
    if (r.id == id) return r;
  return MigrationRecord{};
}

std::vector<MigrationRecord> ShardMigrator::History() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace helios::elastic
