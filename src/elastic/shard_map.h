// Versioned shard -> owner-node map with a double-buffered flip.
//
// `helios::ShardMap` (src/helios/shard_map.h) is the *layout*: a pure hash
// from vertex to logical shard and from seed to serving lane, fixed for the
// lifetime of a deployment. This class is the *placement*: which physical
// node currently owns each logical shard (or serving lane). Placement is the
// thing elasticity changes at runtime — migration moves one shard, a drain
// moves all of a node's shards, an autoscaler adds and retires nodes — so it
// is versioned and swapped atomically.
//
// Concurrency model (the "double-buffered flip" of docs/ELASTICITY.md):
// readers take a `View` — an immutable, refcounted snapshot — once per unit
// of work (one poll batch, one dispatched frame, one admission decision) and
// route everything in that unit under it. A writer builds the successor
// snapshot aside, bumps the version, and swaps the pointer; in-flight work
// keeps the old snapshot alive through its shared_ptr until it drains, so a
// flip never changes routing mid-frame. The map version is monotonic and is
// the "map epoch" of the migration protocol: it orders flips relative to the
// ft epoch bumps that fence replayed traffic (see docs/ELASTICITY.md).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace helios::elastic {

class ShardMap {
 public:
  // One immutable placement generation.
  struct Snapshot {
    std::vector<std::uint32_t> owner;  // shard (or lane) -> node
    std::uint64_t version = 1;

    std::uint32_t OwnerOf(std::uint32_t shard) const { return owner[shard]; }
    std::uint32_t NumShards() const { return static_cast<std::uint32_t>(owner.size()); }
    std::vector<std::uint32_t> ShardsOf(std::uint32_t node) const {
      std::vector<std::uint32_t> out;
      for (std::uint32_t s = 0; s < owner.size(); ++s)
        if (owner[s] == node) out.push_back(s);
      return out;
    }
  };
  using View = std::shared_ptr<const Snapshot>;

  ShardMap() : ShardMap(std::vector<std::uint32_t>{}) {}
  explicit ShardMap(std::vector<std::uint32_t> owners) {
    auto snap = std::make_shared<Snapshot>();
    snap->owner = std::move(owners);
    snap->version = 1;
    current_ = std::move(snap);
  }

  // The static layout's placement: shard s lives on node s / shards_per_node
  // (matches helios::ShardMap::WorkerOfShard, so a cluster that never
  // migrates routes exactly as before).
  static ShardMap Contiguous(std::uint32_t num_shards, std::uint32_t shards_per_node) {
    std::vector<std::uint32_t> owners(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) owners[s] = s / shards_per_node;
    return ShardMap(std::move(owners));
  }
  // Round-robin over `num_nodes` (the DES autoscaler's initial spread).
  static ShardMap Striped(std::uint32_t num_shards, std::uint32_t num_nodes) {
    std::vector<std::uint32_t> owners(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) owners[s] = s % num_nodes;
    return ShardMap(std::move(owners));
  }

  // Snapshot for one unit of routing work. Cheap: one mutex + refcount.
  View Current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  // Point read (fresh snapshot each call — use Current() inside loops).
  std::uint32_t OwnerOf(std::uint32_t shard) const { return Current()->OwnerOf(shard); }
  std::uint64_t version() const { return Current()->version; }
  std::uint32_t NumShards() const { return Current()->NumShards(); }
  std::vector<std::uint32_t> ShardsOf(std::uint32_t node) const {
    return Current()->ShardsOf(node);
  }

  // Publishes a successor snapshot with `shard` moved to `new_owner`.
  // Returns the new version. Readers holding the old View are unaffected.
  std::uint64_t Flip(std::uint32_t shard, std::uint32_t new_owner) {
    return FlipMany({{shard, new_owner}});
  }
  std::uint64_t FlipMany(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& moves) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<Snapshot>(*current_);
    for (const auto& [shard, node] : moves) next->owner[shard] = node;
    next->version = current_->version + 1;
    current_ = std::move(next);
    return current_->version;
  }

 private:
  mutable std::mutex mutex_;
  View current_;
};

}  // namespace helios::elastic
