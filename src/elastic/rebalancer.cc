#include "elastic/rebalancer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace helios::elastic {

Rebalancer::Rebalancer(RebalancerOptions options) : options_(options) {
  if (options_.registry != nullptr) {
    m_ticks_ = options_.registry->GetCounter("elastic.rebalancer.ticks");
    m_moves_planned_ = options_.registry->GetCounter("elastic.rebalancer.moves_planned");
    m_target_nodes_ = options_.registry->GetGauge("elastic.rebalancer.target_nodes");
    m_imbalance_bp_ = options_.registry->GetGauge("elastic.rebalancer.imbalance_bp");
  }
}

void Rebalancer::NoteMigration(std::uint32_t shard, std::int64_t now_us) {
  if (shard >= last_move_us_.size()) last_move_us_.resize(shard + 1, INT64_MIN);
  last_move_us_[shard] = now_us;
}

bool Rebalancer::InCooldown(std::uint32_t shard, std::int64_t now_us) const {
  if (shard >= last_move_us_.size()) return false;
  if (last_move_us_[shard] == INT64_MIN) return false;
  return now_us - last_move_us_[shard] < options_.shard_cooldown_us;
}

Plan Rebalancer::Tick(std::int64_t now_us, const std::vector<ShardLoad>& loads,
                      const ShardMap::Snapshot& view, const NodeSet& nodes,
                      std::uint32_t in_flight) {
  Plan plan;
  plan.target_nodes = nodes.ActiveCount();
  if (last_decision_us_ != INT64_MIN && now_us - last_decision_us_ < options_.decision_interval_us)
    return plan;
  last_decision_us_ = now_us;
  if (m_ticks_ != nullptr) m_ticks_->Add(1);
  plan.acted = true;

  const std::uint32_t num_nodes = static_cast<std::uint32_t>(nodes.active.size());
  if (num_nodes == 0 || view.NumShards() == 0) return plan;

  // Per-shard and per-node load, measured under `view`. Load is qps-shaped;
  // bytes/s rides along for reporting but qps drives placement (the two
  // track each other on this workload — both count events through a shard).
  std::vector<double> shard_qps(view.NumShards(), 0.0);
  double total = 0;
  for (const ShardLoad& l : loads) {
    if (l.shard >= shard_qps.size()) continue;
    shard_qps[l.shard] = l.qps;
    total += l.qps;
  }
  std::vector<double> node_load(num_nodes, 0.0);
  for (std::uint32_t s = 0; s < view.NumShards(); ++s) {
    std::uint32_t n = view.OwnerOf(s);
    if (n < num_nodes) node_load[n] += shard_qps[s];
  }

  // ---- autoscaling: pick the active-node count that keeps utilization in
  // [scale_down_util, scale_up_util] of aggregate capacity.
  std::uint32_t active = nodes.ActiveCount();
  if (options_.node_capacity_qps > 0 && active > 0) {
    const double cap = options_.node_capacity_qps;
    const double util = total / (static_cast<double>(active) * cap);
    std::uint32_t cap_nodes = options_.max_nodes == 0 ? num_nodes
                                                      : std::min(options_.max_nodes, num_nodes);
    std::uint32_t target = active;
    if (util > options_.scale_up_util) {
      // Enough nodes that the load sits at the midpoint of the band.
      const double mid = 0.5 * (options_.scale_up_util + options_.scale_down_util);
      target = static_cast<std::uint32_t>(std::ceil(total / (cap * mid)));
    } else if (util < options_.scale_down_util && active > options_.min_nodes) {
      const double mid = 0.5 * (options_.scale_up_util + options_.scale_down_util);
      target = static_cast<std::uint32_t>(std::ceil(total / (cap * mid)));
    }
    target = std::max(target, options_.min_nodes);
    target = std::min(target, cap_nodes);
    plan.target_nodes = target;
    if (target < active) {
      // Drain-then-retire: evacuate the least-loaded active nodes.
      std::vector<std::uint32_t> candidates;
      for (std::uint32_t n = 0; n < num_nodes; ++n)
        if (nodes.active[n] && !nodes.draining[n]) candidates.push_back(n);
      std::sort(candidates.begin(), candidates.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (node_load[a] != node_load[b]) return node_load[a] < node_load[b];
                  return a > b;  // prefer retiring later-added nodes on ties
                });
      for (std::uint32_t i = 0; i < active - target && i < candidates.size(); ++i)
        plan.drain.push_back(candidates[i]);
    }
  }
  if (m_target_nodes_ != nullptr) m_target_nodes_->Set(plan.target_nodes);

  // Nodes eligible to receive shards: active, not draining, not being
  // retired by this very plan.
  auto receives = [&](std::uint32_t n) {
    if (!nodes.active[n] || nodes.draining[n]) return false;
    for (std::uint32_t d : plan.drain)
      if (d == n) return false;
    return true;
  };
  std::uint32_t receivers = 0;
  double mean = 0;
  for (std::uint32_t n = 0; n < num_nodes; ++n)
    if (receives(n)) {
      ++receivers;
      mean += node_load[n];
    }
  if (receivers == 0) return plan;
  mean /= receivers;
  if (m_imbalance_bp_ != nullptr && mean > 0) {
    double worst = 0;
    for (std::uint32_t n = 0; n < num_nodes; ++n)
      if (receives(n)) worst = std::max(worst, node_load[n]);
    m_imbalance_bp_->Set(static_cast<std::int64_t>(worst / mean * 10'000.0));
  }

  std::uint32_t budget = options_.max_concurrent_migrations > in_flight
                             ? options_.max_concurrent_migrations - in_flight
                             : 0;

  auto coldest_receiver = [&]() {
    std::uint32_t best = num_nodes;
    for (std::uint32_t n = 0; n < num_nodes; ++n)
      if (receives(n) && (best == num_nodes || node_load[n] < node_load[best])) best = n;
    return best;
  };

  // ---- evacuations first: every shard on a draining (or newly drained)
  // node must leave regardless of watermarks. Cooldown does not pin a shard
  // to a dying node.
  auto evacuating = [&](std::uint32_t n) {
    if (nodes.draining[n]) return true;
    for (std::uint32_t d : plan.drain)
      if (d == n) return true;
    return false;
  };
  for (std::uint32_t s = 0; s < view.NumShards() && budget > 0; ++s) {
    std::uint32_t from = view.OwnerOf(s);
    if (from >= num_nodes || !evacuating(from)) continue;
    std::uint32_t to = coldest_receiver();
    if (to == num_nodes) break;
    plan.migrations.push_back({s, from, to});
    node_load[to] += shard_qps[s];
    --budget;
  }

  // ---- load-driven moves: hottest shard off the hottest over-watermark
  // donor onto the coldest receiver, while the move actually helps.
  while (budget > 0) {
    std::uint32_t donor = num_nodes;
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      if (!nodes.active[n] || evacuating(n)) continue;
      if (node_load[n] <= options_.high_watermark * mean) continue;
      if (donor == num_nodes || node_load[n] > node_load[donor]) donor = n;
    }
    if (donor == num_nodes) break;
    std::uint32_t to = coldest_receiver();
    if (to == num_nodes || to == donor) break;
    // Hottest cooled-down shard on the donor that still fits: moving it must
    // not just swap who is overloaded.
    std::uint32_t pick = view.NumShards();
    for (std::uint32_t s = 0; s < view.NumShards(); ++s) {
      if (view.OwnerOf(s) != donor || shard_qps[s] <= 0) continue;
      if (InCooldown(s, now_us)) continue;
      bool taken = false;
      for (const MigrationOrder& m : plan.migrations) taken |= m.shard == s;
      if (taken) continue;
      if (node_load[to] + shard_qps[s] >= node_load[donor]) continue;
      if (pick == view.NumShards() || shard_qps[s] > shard_qps[pick]) pick = s;
    }
    if (pick == view.NumShards()) break;
    plan.migrations.push_back({pick, donor, to});
    node_load[donor] -= shard_qps[pick];
    node_load[to] += shard_qps[pick];
    --budget;
  }

  if (m_moves_planned_ != nullptr && !plan.migrations.empty())
    m_moves_planned_->Add(plan.migrations.size());
  return plan;
}

}  // namespace helios::elastic
