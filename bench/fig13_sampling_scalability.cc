// Figure 13: pre-sampling scalability on INTER.
//   (a) scale-up: 4 sampling nodes, sampling threads per node 4 -> 16;
//   (b) scale-out: 16 threads/node, sampling nodes 1 -> 4.
// Paper shape: near-linear throughput growth in both dimensions, for TopK
// and Random.
//
// Usage: fig13_sampling_scalability [scale=2000]
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  const auto spec = gen::MakeInter(scale);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();

  auto run = [&](Strategy strategy, std::uint32_t nodes, std::uint32_t threads) {
    const auto plan = bench::PaperQuery(spec, strategy, 2);
    bench::HeliosEmuConfig hc;
    hc.sampling_nodes = nodes;
    hc.sampling_threads = threads;
    hc.serving_nodes = 4;
    bench::HeliosDeployment helios(plan, hc);
    return helios.EmulateIngestion(updates, 0).throughput_mps;
  };

  bench::PrintHeader("Fig 13(a): sampling scale-up (4 nodes, threads 4->16)",
                     "strategy   threads   throughput_mps   speedup_vs_4");
  for (const Strategy strategy : {Strategy::kTopK, Strategy::kRandom}) {
    double base = 0;
    for (const std::uint32_t threads : {4u, 8u, 16u}) {
      const double mps = run(strategy, 4, threads);
      if (threads == 4) base = mps;
      std::printf("%-10s %-9u %-16.2f %.2fx\n", StrategyName(strategy), threads, mps,
                  mps / base);
    }
  }

  bench::PrintHeader("Fig 13(b): sampling scale-out (16 threads, nodes 1->4)",
                     "strategy   nodes     throughput_mps   speedup_vs_1");
  for (const Strategy strategy : {Strategy::kTopK, Strategy::kRandom}) {
    double base = 0;
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
      const double mps = run(strategy, nodes, 16);
      if (nodes == 1) base = mps;
      std::printf("%-10s %-9u %-16.2f %.2fx\n", StrategyName(strategy), nodes, mps, mps / base);
    }
  }
  std::printf("\nexpected shape: near-linear scaling in both dimensions (paper Fig 13); "
              "paper absolute: >1.49M records/s per worker\n");
  return 0;
}
