// Figure 21 (extension): elastic scale-out under a diurnal load curve.
//
// The autoscaling DES scenario of docs/ELASTICITY.md: open-loop inference
// queries arrive on a deterministic raised-cosine "day" (trough at both
// ends, prime-time in the middle), and the elastic control plane —
// per-shard telemetry -> Rebalancer -> ShardMigrator — migrates shards,
// adds serving capacity on the ramp, and drain-then-retires nodes on the
// way back down. Two runs over the *identical* workload:
//
//   golden   migrations_enabled=false — placement frozen at the initial
//            striping; every response payload folded into an FNV-1a hash
//   elastic  the full control plane live
//
// Gates (exit 1 on violation):
//   parity      elastic.served_hash == golden.served_hash (byte-identical
//               served results; the ISSUE acceptance bar)
//   scale-up    peak node count exceeds the initial allocation
//   scale-down  at least one node drained and retired
//   migrations  shards actually moved (with real Serialize/Deserialize
//               checkpoints paying the wire)
//   slo         >= 60% of buckets with traffic keep p99 within the band
//
// Usage: fig21_elastic [scale=2000] [duration-s=30] [capacity=2000]
//        [initial-nodes=2] [max-nodes=8] [slo-ms=100] [quick=1]
//        [diurnal-base=500] [diurnal-peak=10000] [diurnal-period-s=<dur>]
//        [--trace-out=trace.json] [--metrics-out=-]
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const bool quick = config.GetInt("quick", 0) != 0;
  const std::uint64_t scale = bench::ScaleFromConfig(config, quick ? 8000 : 2000);
  const double duration_s = config.GetDouble("duration-s", quick ? 12.0 : 30.0);

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kRandom, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(quick ? 4000 : 10000);

  // A small shard universe (16 logical shards) keeps evacuations inside the
  // migration budget over a short simulated day; the protocol is identical
  // at any S.
  bench::HeliosEmuConfig hc;
  hc.sampling_nodes = 2;
  hc.sampling_threads = 16;
  hc.serving_nodes = 4;
  bench::HeliosDeployment helios(plan, hc);
  helios.IngestAll(updates);

  bench::HeliosDeployment::ElasticSpec espec;
  espec.duration_us = static_cast<sim::SimTime>(duration_s * 1e6);
  espec.node_capacity_qps = config.GetDouble("capacity", 2000);
  espec.initial_nodes = static_cast<std::uint32_t>(config.GetInt("initial-nodes", 2));
  espec.max_nodes = static_cast<std::uint32_t>(config.GetInt("max-nodes", 8));
  espec.min_nodes = 1;
  espec.max_concurrent_migrations = 8;
  espec.decision_interval_us = 250'000;
  espec.slo_deadline_us = static_cast<std::uint64_t>(config.GetInt("slo-ms", 100)) * 1000;
  gen::DiurnalSpec fallback;
  fallback.base_qps = 500;
  fallback.peak_qps = 10'000;
  fallback.period_us = espec.duration_us;  // one full day over the run
  espec.diurnal = bench::DiurnalFromConfig(config, fallback);

  obs::TraceBuffer trace_buffer;
  obs::TraceBuffer* trace = bench::TraceRequested(config) ? &trace_buffer : nullptr;

  // Golden run: identical arrivals and seed draws, placement frozen.
  auto golden_spec = espec;
  golden_spec.migrations_enabled = false;
  const auto golden = helios.EmulateElastic(seeds, golden_spec);
  const auto elastic = helios.EmulateElastic(seeds, espec, trace);

  bench::PrintHeader("Fig 21: elastic autoscaling over a diurnal day (INTER 2-hop)",
                     "run        offered    completed  p99_ms   nodes(peak/final)  migr");
  std::printf("%-10s %-10llu %-10llu %-8.2f %u/%-16u %llu\n", "golden",
              static_cast<unsigned long long>(golden.offered),
              static_cast<unsigned long long>(golden.completed),
              static_cast<double>(golden.latency_us.P99()) / 1e3, golden.peak_nodes,
              golden.final_nodes, static_cast<unsigned long long>(golden.migrations));
  std::printf("%-10s %-10llu %-10llu %-8.2f %u/%-16u %llu\n", "elastic",
              static_cast<unsigned long long>(elastic.offered),
              static_cast<unsigned long long>(elastic.completed),
              static_cast<double>(elastic.latency_us.P99()) / 1e3, elastic.peak_nodes,
              elastic.final_nodes, static_cast<unsigned long long>(elastic.migrations));
  std::printf("\nelastic timeline (node count vs offered load; %llu migrations, "
              "%.1f MB of checkpoints moved, map v%llu):\n",
              static_cast<unsigned long long>(elastic.migrations),
              static_cast<double>(elastic.ckpt_bytes_moved) / 1e6,
              static_cast<unsigned long long>(elastic.final_map_version));
  elastic.PrintTimeline();

  // ---- gates ----
  int failures = 0;
  if (elastic.served_hash != golden.served_hash || elastic.offered != golden.offered ||
      elastic.completed != golden.completed) {
    std::printf("FAIL parity: golden hash %016llx (%llu/%llu) vs elastic %016llx (%llu/%llu)\n",
                static_cast<unsigned long long>(golden.served_hash),
                static_cast<unsigned long long>(golden.offered),
                static_cast<unsigned long long>(golden.completed),
                static_cast<unsigned long long>(elastic.served_hash),
                static_cast<unsigned long long>(elastic.offered),
                static_cast<unsigned long long>(elastic.completed));
    ++failures;
  } else {
    std::printf("parity: served results byte-identical with and without migrations "
                "(hash %016llx over %llu responses)\n",
                static_cast<unsigned long long>(elastic.served_hash),
                static_cast<unsigned long long>(elastic.completed));
  }
  if (elastic.migrations == 0) {
    std::printf("FAIL migrations: control plane never moved a shard\n");
    ++failures;
  }
  if (elastic.peak_nodes <= espec.initial_nodes) {
    std::printf("FAIL scale-up: peak nodes %u never exceeded initial %u\n", elastic.peak_nodes,
                espec.initial_nodes);
    ++failures;
  }
  if (elastic.nodes_retired == 0) {
    std::printf("FAIL scale-down: no node was drained and retired\n");
    ++failures;
  }
  std::size_t with_traffic = 0, in_band = 0;
  for (const auto& b : elastic.timeline) {
    if (b.p99_us == 0) continue;
    ++with_traffic;
    if (b.p99_us <= espec.slo_deadline_us) ++in_band;
  }
  const double band_frac =
      with_traffic > 0 ? static_cast<double>(in_band) / static_cast<double>(with_traffic) : 1.0;
  std::printf("slo: p99 within %llums band in %zu/%zu buckets (%.0f%%)\n",
              static_cast<unsigned long long>(espec.slo_deadline_us / 1000), in_band,
              with_traffic, band_frac * 100);
  if (band_frac < 0.60) {
    std::printf("FAIL slo: fewer than 60%% of buckets inside the band\n");
    ++failures;
  }

  const auto snapshot = helios.registry().TakeSnapshot();
  bench::DumpObservability(config, &snapshot, trace ? &trace_buffer : nullptr);
  if (failures != 0) {
    std::printf("\n%d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall gates passed: node count tracks the diurnal curve, served bytes "
              "identical, drain-then-retire clean\n");
  return 0;
}
