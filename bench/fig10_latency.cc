// Figure 10: end-to-end serving latency (average and P99) of Helios vs the
// TigerGraph / NebulaGraph stand-ins under rising concurrency.
//
// Paper shape to reproduce: baseline latency grows to second-level under
// load with a P99 >150ms above average; Helios stays under a ~50ms P99
// with a P99-average gap within ~20ms, up to 32x (TopK) / 24x (Random)
// lower P99 than baselines.
//
// Usage: fig10_latency [scale=2000] [requests=1200]
#include <algorithm>
#include <cstdio>

#include "bench/serving_sweep.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1200));

  bench::PrintHeader("Fig 10: serving latency, Helios vs baselines (2-hop [25,10])",
                     "system       dataset  strategy   concurrency  avg_ms  p99_ms  gap_ms");
  double helios_worst_p99 = 0, helios_worst_gap = 0, best_p99_reduction = 0;
  double helios_p99 = 0;
  bench::RunServingSweep(
      scale, requests, {100, 200, 400, 800}, [&](const bench::SweepPoint& p) {
        const double avg_ms = p.report.latency_us.Mean() / 1000.0;
        const double p99_ms = static_cast<double>(p.report.latency_us.P99()) / 1000.0;
        std::printf("%-12s %-8s %-10s conc=%-4u %-7.2f %-7.2f %-7.2f\n", p.system.c_str(),
                    p.dataset.c_str(), p.strategy.c_str(), p.concurrency, avg_ms, p99_ms,
                    p99_ms - avg_ms);
        if (p.system == "Helios") {
          helios_p99 = p99_ms;
          helios_worst_p99 = std::max(helios_worst_p99, p99_ms);
          helios_worst_gap = std::max(helios_worst_gap, p99_ms - avg_ms);
        } else if (helios_p99 > 0) {
          best_p99_reduction = std::max(best_p99_reduction, p99_ms / helios_p99);
        }
      });
  std::printf("\nHelios worst P99 %.1fms (paper: <50ms); worst P99-avg gap %.1fms (paper: "
              "<20ms); max P99 reduction vs baselines %.0fx (paper: up to 32x)\n",
              helios_worst_p99, helios_worst_gap, best_p99_reduction);
  return 0;
}
