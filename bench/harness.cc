#include "bench/harness.h"

#include <algorithm>
#include <deque>
#include <map>
#include <functional>

#include "ft/fence.h"
#include "ft/supervisor.h"
#include "util/clock.h"
#include "util/hash.h"
#include "util/rng.h"

namespace helios::bench {

namespace {
constexpr std::size_t kChunk = 1024;  // updates per arrival/service batch

// One-time calibration of the timer's own cost, subtracted from every
// measured service so millions of tiny jobs are not inflated by
// measurement overhead.
util::Nanos TimerOverheadNs() {
  static const util::Nanos overhead = [] {
    constexpr int kReps = 20000;
    const util::Nanos t = util::TimeItNanos([] {
      for (int i = 0; i < kReps; ++i) {
        volatile util::Nanos x = util::TimeItNanos([] {});
        (void)x;
      }
    });
    return t / kReps;
  }();
  return overhead;
}

// Serializes work for one logical owner (a shard or a serving worker) on a
// shared multi-server CPU: the DES equivalent of an actor mailbox.
// Service functions report *nanoseconds*; the queue carries the sub-
// microsecond remainder forward so no measured compute is lost to the
// emulator's microsecond clock.
class SerialQueue {
 public:
  void Attach(sim::Resource* cpu) { cpu_ = cpu; }

  // service_fn runs at dispatch (computing the measured service time in ns
  // and side outputs); completion_fn runs at virtual completion.
  void Submit(std::function<util::Nanos()> service_fn, std::function<void()> completion_fn) {
    jobs_.push_back({std::move(service_fn), std::move(completion_fn)});
    Pump();
  }

 private:
  struct Job {
    std::function<util::Nanos()> service_fn;
    std::function<void()> completion_fn;
  };

  void Pump() {
    if (busy_ || jobs_.empty()) return;
    busy_ = true;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    carry_ns_ += std::max<util::Nanos>(job.service_fn() - TimerOverheadNs(), 0);
    const sim::SimTime service = static_cast<sim::SimTime>(carry_ns_ / 1000);
    carry_ns_ %= 1000;
    cpu_->Enqueue(service, [this, done = std::move(job.completion_fn)] {
      done();
      busy_ = false;
      Pump();
    });
  }

  sim::Resource* cpu_ = nullptr;
  std::deque<Job> jobs_;
  util::Nanos carry_ns_ = 0;
  bool busy_ = false;
};

std::size_t ResponseBytes(const SampledSubgraph& result) {
  std::size_t bytes = 64;
  for (const auto& layer : result.layers) bytes += layer.size() * 12;
  result.features.ForEach(
      [&](graph::VertexId, std::span<const float> f) { bytes += 12 + f.size() * 4; });
  return bytes;
}
}  // namespace

// ============================================================ Helios

HeliosDeployment::HeliosDeployment(QueryPlan plan, HeliosEmuConfig config)
    : plan_(std::move(plan)), config_(std::move(config)) {
  map_.sampling_workers = config_.sampling_nodes;
  map_.shards_per_worker = config_.sampling_threads;
  map_.serving_workers = config_.serving_nodes;
  for (std::uint32_t s = 0; s < map_.TotalShards(); ++s) {
    SamplingShardCore::Options opts;
    opts.registry = &registry_;
    shards_.push_back(
        std::make_unique<SamplingShardCore>(plan_, map_, s, config_.seed, opts));
  }
  for (std::uint32_t n = 0; n < map_.serving_workers; ++n) {
    ServingCore::Options so;
    so.kv = config_.serving_kv;
    if (!so.kv.spill_dir.empty()) so.kv.spill_dir += "/sew-" + std::to_string(n);
    so.registry = &registry_;
    so.feature_format = config_.feature_format;
    so.aggregate_cache_entries = config_.aggregate_cache_entries;
    so.aggregate_staleness_us = config_.aggregate_staleness_us;
    serving_.push_back(std::make_unique<ServingCore>(plan_, n, std::move(so)));
  }
}

void HeliosDeployment::DrainOutputs(SamplingShardCore::Outputs& out) {
  // Breadth-first delta pump, applying serving messages inline.
  std::deque<std::pair<std::uint32_t, SubscriptionDelta>> deltas;
  out.to_serving.ForEach([&](std::uint32_t sew, const ServingMessage& msg) {
    serving_[sew]->Apply(msg);
  });
  for (auto& d : out.to_shards) deltas.push_back(d);
  out.Clear();
  SamplingShardCore::Outputs next;
  while (!deltas.empty()) {
    auto [shard, delta] = deltas.front();
    deltas.pop_front();
    shards_[shard]->OnSubscriptionDelta(delta, 0, next);
    next.to_serving.ForEach([&](std::uint32_t sew, const ServingMessage& msg) {
      serving_[sew]->Apply(msg);
    });
    for (auto& d : next.to_shards) deltas.push_back(d);
    next.Clear();
  }
}

void HeliosDeployment::IngestAll(const std::vector<graph::GraphUpdate>& updates) {
  SamplingShardCore::Outputs out;
  for (const auto& u : updates) {
    const graph::VertexId routing = std::visit(
        [](const auto& x) {
          using T = std::decay_t<decltype(x)>;
          if constexpr (std::is_same_v<T, graph::EdgeUpdate>) {
            return x.src;
          } else {
            return x.id;
          }
        },
        u);
    shards_[map_.ShardOf(routing)]->OnGraphUpdate(u, 0, out);
    DrainOutputs(out);
  }
}

IngestReport HeliosDeployment::EmulateIngestion(const std::vector<graph::GraphUpdate>& updates,
                                                double offered_rate_mps,
                                                obs::TraceBuffer* trace,
                                                const DesFaultSpec* fault,
                                                const IngestObs* obs) {
  sim::SimEnv env;
  // Identical instrumentation to the threaded runtime, but clocked on the
  // DES virtual time: per-run registry so repeated emulations do not mix.
  obs::MetricsRegistry run_registry;
  obs::FunctionClock virtual_clock([&env] { return env.now(); });
  obs::StageTracer tracer(&run_registry, &virtual_clock, trace);
  // Causal trace ids for this run: counter-based (never wall time or RNG),
  // so traced runs stay as deterministic as untraced ones.
  obs::TraceIdAllocator trace_ids(0);
  if (trace != nullptr) {
    trace->BindDroppedCounter(run_registry.GetCounter("obs.trace.dropped_events"));
  }
  // Dissemination batching metrics, same names as the threaded runtime.
  obs::Counter* diss_batches = run_registry.GetCounter("dissemination.batches");
  obs::Counter* diss_messages = run_registry.GetCounter("dissemination.messages");
  obs::Counter* diss_coalesced = run_registry.GetCounter("dissemination.coalesced_msgs");
  obs::Counter* diss_bytes = run_registry.GetCounter("dissemination.bytes_wire");
  obs::LatencyMetric* diss_occupancy = run_registry.GetLatency("dissemination.batch_occupancy");
  // Nodes 0..M-1 sampling, M..M+N-1 serving.
  const std::uint32_t M = config_.sampling_nodes;
  const std::uint32_t N = config_.serving_nodes;
  sim::SimCluster::Options copt;
  copt.num_nodes = M + N + 1;  // +1: the producer/front-end node
  copt.cores_per_node = std::max(config_.sampling_threads, config_.serving_threads);
  copt.net_latency_us = config_.net_latency_us;
  copt.gbps = config_.gbps;
  sim::SimCluster cluster(env, copt);
  const std::uint32_t producer_node = M + N;

  // Dedicated resources honouring per-role thread counts.
  std::vector<std::unique_ptr<sim::Resource>> sampling_cpu, serving_cpu;
  for (std::uint32_t m = 0; m < M; ++m) {
    sampling_cpu.push_back(std::make_unique<sim::Resource>(env, config_.sampling_threads));
  }
  for (std::uint32_t n = 0; n < N; ++n) {
    serving_cpu.push_back(std::make_unique<sim::Resource>(env, config_.serving_threads));
  }
  if (trace != nullptr) {
    for (std::uint32_t m = 0; m < M; ++m) {
      trace->SetProcessName(m, "sampling-node-" + std::to_string(m));
      sampling_cpu[m]->EnableTrace(trace, 2000 + m, "cpu");
      trace->SetProcessName(2000 + m, "sampling-node-" + std::to_string(m) + "-cpu");
    }
    for (std::uint32_t n = 0; n < N; ++n) {
      trace->SetProcessName(M + n, "serving-node-" + std::to_string(n));
      serving_cpu[n]->EnableTrace(trace, 2000 + M + n, "cpu");
      trace->SetProcessName(2000 + M + n, "serving-node-" + std::to_string(n) + "-cpu");
    }
  }

  std::vector<SerialQueue> shard_queues(map_.TotalShards());
  for (std::uint32_t s = 0; s < map_.TotalShards(); ++s) {
    shard_queues[s].Attach(sampling_cpu[map_.WorkerOfShard(s)].get());
  }
  // §4.3: each serving worker runs several data-updating threads; updates
  // are sub-sharded by vertex so per-key order is preserved.
  constexpr std::uint32_t kUpdateThreads = 4;
  std::vector<SerialQueue> serving_queues(static_cast<std::size_t>(N) * kUpdateThreads);
  for (std::uint32_t n = 0; n < N; ++n) {
    for (std::uint32_t u = 0; u < kUpdateThreads; ++u) {
      serving_queues[n * kUpdateThreads + u].Attach(serving_cpu[n].get());
    }
  }
  auto update_queue_of = [&](std::uint32_t sew, const ServingMessage& m) -> std::uint32_t {
    return sew * kUpdateThreads +
           static_cast<std::uint32_t>(util::MixHash(m.TargetVertex()) % kUpdateThreads);
  };

  IngestReport report;
  report.updates = updates.size();
  std::uint64_t applied_at_serving = 0;

  // ---- fault-tolerance state (docs/FAULT_TOLERANCE.md)
  //
  // Per-destination epoch/seq fences, keyed by source shard. Admission runs
  // at frame delivery (one event) before the batch splits across the
  // worker's data-updating threads: the fence's frame-contiguity invariant
  // holds per (shard -> worker) stream, which sub-queue interleaving would
  // break.
  std::vector<ft::EpochFence> serving_fences(N);
  obs::Counter* ft_deltas_fenced = run_registry.GetCounter("ft.deltas_fenced");
  const bool fault_mode = fault != nullptr;
  struct LogEntry {
    bool ctrl = false;
    // Whether this entry's dissemination.* contribution has been recorded.
    // An entry counts exactly once: either when its original execution
    // completes, or — if the crash swallowed that completion — when its
    // replay does. This is what makes a faulty run's dissemination counters
    // equal an uninterrupted golden run's (fig20 gates on it).
    bool counted = false;
    std::vector<graph::GraphUpdate> updates;
    std::vector<SubscriptionDelta> deltas;
    std::int64_t origin = 0;
  };
  // The DES stand-in for the broker's durable per-shard partitions: every
  // batch bound for a shard queue is appended here first (fault mode only),
  // so a crashed node replays its tail from the checkpointed position.
  std::vector<std::vector<LogEntry>> shard_log(map_.TotalShards());
  std::vector<std::string> ckpt_bytes(map_.TotalShards());
  std::vector<std::size_t> ckpt_pos(map_.TotalShards(), 0);
  // Killing a node bumps its shards' incarnation: jobs submitted to (or in
  // flight on) the dead incarnation become no-ops, mirroring the threaded
  // runtime's mailbox drop.
  std::vector<std::uint64_t> incarnation(map_.TotalShards(), 0);
  std::vector<char> node_dead(M, 0);
  std::vector<char> node_recovering(M, 0);
  bool monitoring = fault_mode;
  std::uint64_t replayed_updates = 0;
  std::vector<std::uint64_t> timeline;
  const std::uint64_t ctrl_fenced_before =
      fault_mode ? registry_.TakeSnapshot().CounterTotal("ft.ctrl_deltas_fenced") : 0;

  // Delivery of one serving-bound batch (carrying its origin time). The
  // wire is priced at the framed ServingBatch size, computed incrementally
  // by the builder — the in-process payload skips the byte codec. The
  // (src_shard, epoch) stamp plays the role of the ServingBatch frame
  // header: replayed duplicates fence here, exactly once per change.
  auto deliver_to_serving = [&](std::uint32_t from_node, std::uint32_t sew,
                                std::vector<ServingMessage> batch, std::size_t bytes,
                                std::uint32_t src_shard, std::uint32_t epoch,
                                std::uint64_t flow_id) {
    cluster.Send(from_node, M + sew, bytes,
                 [&, sew, src_shard, epoch, flow_id, bytes, batch = std::move(batch)]() mutable {
                   // Close the frame's flow on the serving lane; the matching
                   // start was emitted by route_outputs on the sampler lane.
                   if (trace != nullptr && flow_id != 0) {
                     trace->AddFlowEnd("batch", "dissemination", env.now(), M + sew, 0, flow_id);
                   }
                   if (obs != nullptr && obs->telemetry != nullptr) {
                     obs->telemetry->RecordBytes(sew, env.now(), bytes);
                   }
                   ft::EpochFence& fence = serving_fences[sew];
                   const ft::EpochFence::FrameToken token = fence.BeginFrame(src_shard, epoch);
                   std::vector<ServingMessage> admitted;
                   admitted.reserve(batch.size());
                   std::uint64_t fenced = 0;
                   for (auto& m : batch) {
                     if (token.stale) {
                       fenced += m.kind() == ServingMessage::Kind::kSampleDelta
                                     ? m.delta().num_changes()
                                     : 1;
                       continue;
                     }
                     fenced += FenceInto(fence, src_shard, token, m,
                                         [&](const ServingMessage& ok) {
                                           admitted.push_back(ok);
                                         });
                   }
                   if (fenced > 0) ft_deltas_fenced->Add(fenced);
                   if (trace != nullptr) {
                     // Close each admitted update's causal flow. Messages of
                     // one update sit adjacent in the frame, so deduping
                     // consecutive ids emits one end per update.
                     std::uint64_t last_update_flow = 0;
                     for (const auto& m : admitted) {
                       if (m.trace.active() && m.trace.trace_id != last_update_flow) {
                         last_update_flow = m.trace.trace_id;
                         trace->AddFlowEnd("update", "causal", env.now(), M + sew, 0,
                                           m.trace.trace_id);
                       }
                     }
                   }
                   // Split across the worker's data-updating threads.
                   std::map<std::uint32_t, std::vector<ServingMessage>> per_queue;
                   for (auto& m : admitted) {
                     per_queue[update_queue_of(sew, m)].push_back(std::move(m));
                   }
                   for (auto& [q, sub] : per_queue) {
                   serving_queues[q].Submit(
                       [&, sew, src_shard, batch = std::move(sub)]() -> util::Nanos {
                         const auto t = util::TimeItNanos([&] {
                           for (const auto& m : batch) serving_[sew]->Apply(m);
                         });
                         tracer.RecordSpan(obs::Stage::kCacheApply, env.now(), t / 1000,
                                           M + sew, 0);
                         for (const auto& m : batch) {
                           tracer.RecordEndToEnd(m.OriginMicros(), env.now());
                           applied_at_serving++;
                           if (obs != nullptr && m.OriginMicros() > 0 &&
                               env.now() >= m.OriginMicros()) {
                             if (obs->freshness != nullptr) {
                               obs->freshness->OnApply(m.TargetVertex(), src_shard,
                                                       m.OriginMicros(), env.now());
                             }
                             if (obs->telemetry != nullptr) {
                               obs->telemetry->RecordStaleness(
                                   sew, env.now(),
                                   static_cast<std::uint64_t>(env.now() - m.OriginMicros()));
                             }
                           }
                         }
                         if (fault_mode && fault->timeline_bucket_us > 0) {
                           const std::size_t b = static_cast<std::size_t>(
                               env.now() / fault->timeline_bucket_us);
                           if (timeline.size() <= b) timeline.resize(b + 1, 0);
                           timeline[b] += batch.size();
                         }
                         return t;
                       },
                       [] {});
                   }
                 });
  };

  // Shard-level work items: a batch of graph updates or a batch of deltas.
  // `replay` marks recovery re-submissions: they skip the durable log (they
  // came from it) and count toward ft.updates_replayed. `log_idx` is the
  // entry's position in its shard's durable log (kNoLogEntry outside fault
  // mode) — completion uses it to record the entry's dissemination.*
  // contribution exactly once across original execution and replay.
  constexpr std::size_t kNoLogEntry = static_cast<std::size_t>(-1);
  std::function<void(std::uint32_t, std::vector<graph::GraphUpdate>, std::int64_t, bool,
                     std::size_t)>
      submit_updates;
  std::function<void(std::uint32_t, std::vector<SubscriptionDelta>, std::int64_t, bool,
                     std::size_t)>
      submit_delta;

  auto route_outputs = [&](std::uint32_t shard, SamplingShardCore::Outputs& out,
                           std::int64_t origin, bool count) {
    const std::uint32_t node = map_.WorkerOfShard(shard);
    // Between a job's service and its completion no other job of the queue
    // runs, so the core's epoch here is the epoch its emissions were
    // stamped with.
    const std::uint32_t epoch = shards_[shard]->epoch();
    // One ServingBatch frame per active destination worker (already grouped
    // and coalesced by the Outputs batch builders).
    for (const std::uint32_t sew : out.to_serving.active()) {
      ServingBatchBuilder& b = out.to_serving.builder(sew);
      if (b.empty()) continue;
      const std::size_t bytes = b.WireBytes();
      std::uint64_t flow = 0;
      if (trace != nullptr) {
        // Frame-level flow: opened on the sampler lane, closed by
        // deliver_to_serving on the destination worker's lane.
        flow = trace_ids.Next();
        trace->AddFlowStart("batch", "dissemination", env.now(), node, shard, flow);
      }
      // `count` is false when this execution re-derives work that was
      // already recorded before a crash (satellite: replay-aware metrics).
      if (count) {
        diss_batches->Add(1);
        diss_messages->Add(b.size());
        diss_coalesced->Add(b.coalesced());
        diss_bytes->Add(bytes);
        diss_occupancy->Record(b.size());
      }
      deliver_to_serving(node, sew, b.TakeMessages(), bytes, shard, epoch, flow);
    }
    // Batch control-plane deltas per destination shard (one message each).
    std::map<std::uint32_t, std::vector<SubscriptionDelta>> per_shard_deltas;
    for (auto& [dest, delta] : out.to_shards) per_shard_deltas[dest].push_back(delta);
    for (auto& [dest, deltas] : per_shard_deltas) {
      const std::uint32_t dest_node = map_.WorkerOfShard(dest);
      std::size_t bytes = 0;
      for (const auto& d : deltas) bytes += WireSize(d);
      cluster.Send(node, dest_node, bytes,
                   [&submit_delta, dest, deltas = std::move(deltas), origin]() mutable {
                     submit_delta(dest, std::move(deltas), origin, false, kNoLogEntry);
                   });
    }
    out.Clear();
  };

  // Marks `log_idx` counted and returns whether this completion should
  // record dissemination.* (exactly-once across execution and replay).
  auto should_count = [&](std::uint32_t shard, std::size_t log_idx) {
    if (!fault_mode || log_idx == kNoLogEntry) return true;
    LogEntry& e = shard_log[shard][log_idx];
    const bool count = !e.counted;
    e.counted = true;
    return count;
  };

  submit_updates = [&](std::uint32_t shard, std::vector<graph::GraphUpdate> batch,
                       std::int64_t origin, bool replay, std::size_t log_idx) {
    if (fault_mode && !replay) {
      shard_log[shard].push_back({false, false, batch, {}, origin});
      log_idx = shard_log[shard].size() - 1;
    }
    // A dead node takes no work; the entry above stays durable for replay.
    if (node_dead[map_.WorkerOfShard(shard)] != 0) return;
    const std::uint64_t inc = incarnation[shard];
    auto out = std::make_shared<SamplingShardCore::Outputs>();
    shard_queues[shard].Submit(
        [&, shard, batch = std::move(batch), origin, replay, inc, out]() -> util::Nanos {
          if (inc != incarnation[shard]) return 0;  // job of a crashed incarnation
          // Queue wait: update entered the system -> shard core dispatch.
          if (env.now() >= origin) {
            tracer.RecordDuration(obs::Stage::kIngest,
                                  static_cast<std::uint64_t>(env.now() - origin));
          }
          const auto t = util::TimeItNanos([&] {
            for (const auto& u : batch) {
              if (trace != nullptr) {
                // Mint the update's causal context and open its flow here —
                // the single point every update enters its shard. The
                // serving-side apply closes it.
                const obs::TraceContext ctx = trace_ids.Root();
                trace->AddFlowStart("update", "causal", env.now(),
                                    map_.WorkerOfShard(shard), shard, ctx.trace_id);
                shards_[shard]->OnGraphUpdate(u, origin, *out, ctx);
              } else {
                shards_[shard]->OnGraphUpdate(u, origin, *out);
              }
            }
          });
          if (replay) replayed_updates += batch.size();
          tracer.RecordSpan(obs::Stage::kSample, env.now(), t / 1000,
                            map_.WorkerOfShard(shard), shard);
          return t;
        },
        [&, shard, origin, inc, out, log_idx] {
          if (inc != incarnation[shard]) return;
          route_outputs(shard, *out, origin, should_count(shard, log_idx));
        });
  };

  submit_delta = [&](std::uint32_t shard, std::vector<SubscriptionDelta> deltas,
                     std::int64_t origin, bool replay, std::size_t log_idx) {
    if (fault_mode && !replay) {
      shard_log[shard].push_back({true, false, {}, deltas, origin});
      log_idx = shard_log[shard].size() - 1;
    }
    if (node_dead[map_.WorkerOfShard(shard)] != 0) return;
    const std::uint64_t inc = incarnation[shard];
    auto out = std::make_shared<SamplingShardCore::Outputs>();
    shard_queues[shard].Submit(
        [&, shard, deltas = std::move(deltas), origin, inc, out]() -> util::Nanos {
          if (inc != incarnation[shard]) return 0;
          const auto t = util::TimeItNanos([&] {
            // AdmitCtrl fences a replaying peer's re-emitted deltas, exactly
            // as the threaded shard does when consuming its log.
            for (const auto& d : deltas) {
              if (shards_[shard]->AdmitCtrl(d)) {
                shards_[shard]->OnSubscriptionDelta(d, origin, *out);
              }
            }
          });
          tracer.RecordSpan(obs::Stage::kCascade, env.now(), t / 1000,
                            map_.WorkerOfShard(shard), shard);
          return t;
        },
        [&, shard, origin, inc, out, log_idx] {
          if (inc != incarnation[shard]) return;
          route_outputs(shard, *out, origin, should_count(shard, log_idx));
        });
  };

  // Arrival process: chunks of the stream arrive at the producer and are
  // scattered (one network hop) to the owning sampling nodes.
  const double rate_per_us = offered_rate_mps;  // M updates/s == updates/us
  for (std::size_t start = 0; start < updates.size(); start += kChunk) {
    const std::size_t end = std::min(start + kChunk, updates.size());
    const sim::SimTime arrival =
        rate_per_us > 0 ? static_cast<sim::SimTime>(static_cast<double>(start) / rate_per_us)
                        : 0;
    env.ScheduleAt(arrival, [&, start, end, arrival] {
      // Split the chunk by shard, preserving order.
      std::vector<std::vector<graph::GraphUpdate>> per_shard(map_.TotalShards());
      std::size_t bytes_per_node = 0;
      for (std::size_t i = start; i < end; ++i) {
        const auto& u = updates[i];
        const graph::VertexId routing = std::visit(
            [](const auto& x) {
              using T = std::decay_t<decltype(x)>;
              if constexpr (std::is_same_v<T, graph::EdgeUpdate>) {
                return x.src;
              } else {
                return x.id;
              }
            },
            u);
        per_shard[map_.ShardOf(routing)].push_back(u);
        bytes_per_node += 40;
      }
      for (std::uint32_t s = 0; s < map_.TotalShards(); ++s) {
        if (per_shard[s].empty()) continue;
        cluster.Send(producer_node, map_.WorkerOfShard(s), bytes_per_node / map_.TotalShards(),
                     [&submit_updates, s, batch = std::move(per_shard[s]), arrival]() mutable {
                       submit_updates(s, std::move(batch), arrival, false, kNoLogEntry);
                     });
      }
    });
  }

  // Periodic telemetry snapshots on virtual time. The tick re-arms only
  // while applies are still landing, so it cannot keep the DES event loop
  // alive once the pipeline has quiesced.
  std::function<void()> telemetry_tick;
  std::uint64_t snap_last_applied = ~0ULL;
  if (obs != nullptr && obs->telemetry != nullptr && obs->snapshots != nullptr &&
      obs->telemetry_interval_us > 0) {
    telemetry_tick = [&] {
      obs->snapshots->push_back(obs->telemetry->SnapshotJson(env.now()));
      if (applied_at_serving == snap_last_applied) return;  // quiesced
      snap_last_applied = applied_at_serving;
      env.ScheduleAfter(obs->telemetry_interval_us, telemetry_tick);
    };
    env.ScheduleAfter(obs->telemetry_interval_us, telemetry_tick);
  }

  // ---- crash / detect / restore / replay machinery (fault mode only)
  std::unique_ptr<ft::Supervisor> supervisor;
  std::function<void()> beat_all;  // recurring events; must outlive env.Run()
  std::function<void()> tick_supervisor;
  auto pending_shards = std::make_shared<std::uint32_t>(0);
  if (fault_mode) {
    const std::uint32_t victim = fault->victim_node;
    const std::uint32_t S = map_.shards_per_worker;
    // Entry-state snapshot (virtual t=0, before any stream event): recovery
    // never starts cold even when the crash lands before the first periodic
    // checkpoint. State built outside this emulation (IngestAll warm-up) is
    // not log-derived, so a fresh core + full replay would lose it.
    for (std::uint32_t s = 0; s < map_.TotalShards(); ++s) {
      graph::ByteWriter w;
      shards_[s]->Serialize(w);
      ckpt_bytes[s] = w.Take();
      ckpt_pos[s] = 0;
    }
    // Periodic checkpoint: rides the shard queues so the snapshot is
    // consistent with job order (service functions execute queue-serialized,
    // possibly ahead of virtual time — a snapshot taken directly in a
    // scheduled event would see state the virtual clock hasn't reached).
    if (fault->checkpoint_at_us > 0) {
      env.ScheduleAt(fault->checkpoint_at_us, [&] {
        for (std::uint32_t s = 0; s < map_.TotalShards(); ++s) {
          if (node_dead[map_.WorkerOfShard(s)] != 0) continue;
          const std::size_t pos = shard_log[s].size();
          const std::uint64_t inc = incarnation[s];
          shard_queues[s].Submit(
              [&, s, pos, inc]() -> util::Nanos {
                if (inc != incarnation[s]) return 0;
                const auto t = util::TimeItNanos([&] {
                  graph::ByteWriter w;
                  shards_[s]->Serialize(w);
                  ckpt_bytes[s] = w.Take();
                });
                ckpt_pos[s] = pos;
                return t;
              },
              [] {});
        }
      });
    }
    // The crash: drop the victim's cores. Jobs already queued (and the one
    // in flight) die with the incarnation; the log keeps their records.
    env.ScheduleAt(fault->kill_at_us, [&, victim, S] {
      report.fault_killed_at_us = env.now();
      node_dead[victim] = 1;
      for (std::uint32_t i = 0; i < S; ++i) ++incarnation[victim * S + i];
    });

    // Recovery hook, invoked by the supervisor's Tick when the victim's
    // heartbeat ages out. Restores each shard from its checkpoint (the
    // deserialize runs here — real compute — and its measured cost is
    // charged to the shard queue as the restore job's service time), then
    // replays the durable log tail under the old epoch; the receivers fence
    // every re-emission that already landed before the crash. A catch-up
    // marker per shard bumps it into the granted epoch once its tail is
    // done; the last marker re-admits the node.
    supervisor = std::make_unique<ft::Supervisor>(
        ft::Supervisor::Options{fault->detect_timeout_us}, &run_registry,
        [&, S](std::uint64_t node, std::uint32_t epoch, util::Micros now) -> ft::RecoveryReport {
          ft::RecoveryReport rep;
          rep.node = node;
          rep.epoch = epoch;
          const std::uint32_t n32 = static_cast<std::uint32_t>(node);
          node_dead[n32] = 0;        // reopen the submission path for replay
          node_recovering[n32] = 1;  // no heartbeats until caught up
          *pending_shards = S;
          for (std::uint32_t i = 0; i < S; ++i) {
            const std::uint32_t s = n32 * S + i;
            SamplingShardCore::Options opts;
            opts.registry = &registry_;
            auto fresh = std::make_unique<SamplingShardCore>(plan_, map_, s, config_.seed, opts);
            util::Nanos restore_ns = 0;
            if (!ckpt_bytes[s].empty()) {
              bool ok = true;
              restore_ns = util::TimeItNanos([&] {
                graph::ByteReader r(ckpt_bytes[s]);
                ok = SamplingShardCore::Deserialize(r, *fresh);
              });
              if (!ok) {
                rep.error = "corrupt checkpoint for shard " + std::to_string(s);
                return rep;
              }
              ++rep.shards_restored;
            }
            rep.restore_us += static_cast<util::Micros>(restore_ns / 1000);
            auto staged = std::make_shared<std::unique_ptr<SamplingShardCore>>(std::move(fresh));
            shard_queues[s].Submit(
                [&, s, staged, restore_ns]() -> util::Nanos {
                  shards_[s] = std::move(*staged);
                  return restore_ns;
                },
                [] {});
            const std::size_t tail_end = shard_log[s].size();
            for (std::size_t j = ckpt_pos[s]; j < tail_end; ++j) {
              const LogEntry& e = shard_log[s][j];
              ++rep.records_to_replay;
              if (e.ctrl) {
                submit_delta(s, e.deltas, e.origin, true, j);
              } else {
                submit_updates(s, e.updates, e.origin, true, j);
              }
            }
            shard_queues[s].Submit([]() -> util::Nanos { return 0; },
                                   [&, s, n32, epoch] {
                                     shards_[s]->BumpEpoch(epoch);
                                     if (--*pending_shards == 0) {
                                       report.fault_recovered_at_us = env.now();
                                       report.fault_epoch = epoch;
                                       node_recovering[n32] = 0;
                                       supervisor->Heartbeat(n32, env.now());
                                       monitoring = false;  // single-fault runs
                                     }
                                   });
          }
          rep.ok = true;
          (void)now;
          return rep;
        });
    for (std::uint32_t m = 0; m < M; ++m) supervisor->Register(m, 0);

    const sim::SimTime hb_period = std::max<sim::SimTime>(1, fault->detect_timeout_us / 5);
    beat_all = [&] {
      if (!monitoring) return;
      for (std::uint32_t m = 0; m < M; ++m) {
        if (node_dead[m] == 0 && node_recovering[m] == 0) supervisor->Heartbeat(m, env.now());
      }
      env.ScheduleAfter(hb_period, beat_all);
    };
    tick_supervisor = [&] {
      if (!monitoring) return;
      for (const ft::RecoveryReport& r : supervisor->Tick(env.now())) {
        report.fault_detected_at_us = r.detected_at_us;
      }
      env.ScheduleAfter(hb_period, tick_supervisor);
    };
    env.ScheduleAfter(hb_period, beat_all);
    env.ScheduleAfter(hb_period, tick_supervisor);
  }

  env.Run();
  report.makespan_us = env.now();
  report.throughput_mps =
      report.makespan_us > 0
          ? static_cast<double>(updates.size()) / static_cast<double>(report.makespan_us)
          : 0;
  for (const auto& cpu : sampling_cpu) report.sampling_busy_us.push_back(cpu->busy_time());
  for (const auto& cpu : serving_cpu) report.serving_busy_us.push_back(cpu->busy_time());
  if (obs != nullptr && obs->telemetry != nullptr && obs->snapshots != nullptr) {
    // Closing snapshot so short runs always produce at least one.
    obs->snapshots->push_back(obs->telemetry->SnapshotJson(env.now()));
  }
  (void)applied_at_serving;

  const auto snapshot = run_registry.TakeSnapshot();
  report.latency_us = snapshot.LatencyTotal("pipeline.ingest_e2e");
  report.stage_ingest_us = snapshot.LatencyTotal("pipeline.stage.ingest");
  report.stage_sample_us = snapshot.LatencyTotal("pipeline.stage.sample");
  report.stage_cascade_us = snapshot.LatencyTotal("pipeline.stage.cascade");
  report.stage_cache_apply_us = snapshot.LatencyTotal("pipeline.stage.cache_apply");
  report.diss_batches = snapshot.CounterTotal("dissemination.batches");
  report.diss_messages = snapshot.CounterTotal("dissemination.messages");
  report.diss_coalesced = snapshot.CounterTotal("dissemination.coalesced_msgs");
  report.diss_bytes_wire = snapshot.CounterTotal("dissemination.bytes_wire");
  report.batch_occupancy = snapshot.LatencyTotal("dissemination.batch_occupancy");
  if (fault_mode) {
    report.fault_updates_replayed = replayed_updates;
    report.fault_deltas_fenced = snapshot.CounterTotal("ft.deltas_fenced");
    report.fault_ctrl_fenced =
        registry_.TakeSnapshot().CounterTotal("ft.ctrl_deltas_fenced") - ctrl_fenced_before;
    report.timeline_bucket_us = fault->timeline_bucket_us;
    report.applied_timeline = std::move(timeline);
  }
  return report;
}

ServeReport HeliosDeployment::EmulateServing(const std::vector<graph::VertexId>& seeds,
                                             std::uint32_t concurrency,
                                             std::uint64_t total_requests,
                                             gnn::ModelServer* model,
                                             std::uint32_t model_nodes,
                                             const std::vector<ServingMessage>* background,
                                             double background_rate_mps,
                                             const ServeObs* obs) {
  sim::SimEnv env;
  const std::uint32_t N = config_.serving_nodes;
  obs::TraceBuffer* trace = obs != nullptr ? obs->trace : nullptr;
  obs::MetricsRegistry serve_registry;
  obs::FunctionClock virtual_clock([&env] { return env.now(); });
  obs::StageTracer tracer(&serve_registry, &virtual_clock, trace);
  if (trace != nullptr) {
    trace->BindDroppedCounter(serve_registry.GetCounter("obs.trace.dropped_events"));
    for (std::uint32_t n = 0; n < N; ++n) {
      trace->SetProcessName(n, "serving-node-" + std::to_string(n));
    }
  }
  const std::uint32_t first_model = N;
  const std::uint32_t client_node = N + (model != nullptr ? model_nodes : 0);
  sim::SimCluster::Options copt;
  copt.num_nodes = client_node + 1;
  copt.cores_per_node = config_.serving_threads;
  copt.net_latency_us = config_.net_latency_us;
  copt.gbps = config_.gbps;
  sim::SimCluster cluster(env, copt);

  ServeReport report;
  util::Rng rng(config_.seed ^ 0xC0FFEE);
  std::uint64_t issued = 0, completed = 0;
  sim::SimTime last_completion = 0;
  // One ServeScratch per serving worker: ServeInto runs synchronously
  // inside the TimeIt below, so requests on the same worker never share a
  // scratch concurrently, and reuse keeps the measured read path on its
  // zero-allocation steady state.
  std::vector<ServeScratch> scratch(N);

  std::function<void()> issue = [&] {
    if (issued >= total_requests) return;
    issued++;
    const graph::VertexId seed = seeds[rng.Uniform(seeds.size())];
    const std::uint32_t worker = map_.ServingWorkerOf(seed);
    const sim::SimTime t0 = env.now();
    cluster.Send(client_node, worker, 64, [&, seed, worker, t0] {
      // Execute the real local-cache assembly; measured time is the
      // virtual service time on the worker's serving threads. The result
      // outlives this callback (model inference happens later on the DES
      // timeline), so it is per-request; the scratch is reused.
      auto result = std::make_shared<SampledSubgraph>();
      const util::Nanos service_ns =
          util::TimeItNanos([&] { serving_[worker]->ServeInto(seed, *result, scratch[worker]); });
      report.read_path_ns.Record(static_cast<std::uint64_t>(std::max<util::Nanos>(service_ns, 0)));
      const sim::SimTime service = static_cast<sim::SimTime>(service_ns / 1000);
      if (obs != nullptr && obs->freshness != nullptr) {
        // First-serve staleness: did this query read any cache cell an
        // armed update was waiting on? feat_vertices is exactly the set of
        // cells the read touched.
        for (const graph::VertexId v : scratch[worker].feat_vertices) {
          const std::int64_t st = obs->freshness->OnServe(v, env.now());
          if (st >= 0 && obs->telemetry != nullptr) {
            obs->telemetry->RecordStaleness(worker, env.now(), st);
          }
        }
      }
      cluster.cpu(worker).Enqueue(std::max<sim::SimTime>(service, 1), [&, result, worker, t0,
                                                                       service] {
        if (trace != nullptr) {
          tracer.RecordSpan(obs::Stage::kServe, env.now() - service, service, worker, 0);
        }
        report.missing_cells += result->missing_cells;
        report.missing_features += result->missing_features;
        const std::size_t bytes = ResponseBytes(*result);
        // Single completion point for both the direct and the model path:
        // records client-observed latency and, when telemetry is wired,
        // feeds the per-worker qps/bytes/p99 window and the deadline/SLO
        // tracker.
        auto record_done = [&, worker, t0, bytes] {
          const sim::SimTime lat = env.now() - t0;
          report.latency_us.Record(static_cast<std::uint64_t>(lat));
          if (obs != nullptr && obs->telemetry != nullptr) {
            obs->telemetry->RecordQuery(worker, env.now(), static_cast<std::int64_t>(lat), bytes,
                                        obs->deadline_us);
          }
          completed++;
          last_completion = env.now();
          issue();
        };
        auto finish = [&, record_done](std::uint32_t from_node) {
          cluster.Send(from_node, client_node, 128, record_done);
        };
        if (model == nullptr) {
          cluster.Send(worker, client_node, bytes, record_done);
        } else {
          const std::uint32_t mnode =
              first_model + static_cast<std::uint32_t>(rng.Uniform(model_nodes));
          cluster.Send(worker, mnode, bytes, [&, result, mnode, finish] {
            const auto infer = util::TimeIt([&] { (void)model->Infer(*result); });
            cluster.cpu(mnode).Enqueue(std::max<sim::SimTime>(infer, 1),
                                       [mnode, finish] { finish(mnode); });
          });
        }
      });
    });
  };

  // Background ingestion load on the serving nodes (Fig 12): the
  // data-updating threads keep applying sample-queue messages while the
  // serving threads answer queries. Batches of 64 arrive at the modelled
  // rate until the query workload completes.
  std::function<void(std::uint64_t)> background_tick = [&](std::uint64_t cursor) {
    if (background == nullptr || background->empty() || background_rate_mps <= 0) return;
    if (completed >= total_requests) return;
    constexpr std::uint64_t kBatch = 64;
    const sim::SimTime gap =
        std::max<sim::SimTime>(1, static_cast<sim::SimTime>(kBatch / background_rate_mps));
    env.ScheduleAfter(gap, [&, cursor] {
      if (completed >= total_requests) return;
      const std::uint32_t sew = static_cast<std::uint32_t>(cursor % N);
      const std::int64_t applied_at = env.now();
      const auto service = util::TimeIt([&] {
        for (std::uint64_t i = 0; i < kBatch; ++i) {
          const ServingMessage& m = (*background)[(cursor + i) % background->size()];
          serving_[sew]->Apply(m);
          if (obs != nullptr && obs->freshness != nullptr) {
            // Arm first-serve tracking for the touched cell. Replayed
            // background messages may predate this run's clock; fall back
            // to the apply instant so staleness measures serve - apply.
            const std::int64_t origin = m.OriginMicros() > 0 ? m.OriginMicros() : applied_at;
            obs->freshness->OnApply(m.TargetVertex(), map_.ShardOf(m.TargetVertex()), origin,
                                    applied_at);
          }
        }
      });
      cluster.cpu(sew).Enqueue(std::max<sim::SimTime>(service, 1), [] {});
      background_tick(cursor + kBatch);
    });
  };
  background_tick(0);

  // Periodic telemetry snapshots on the virtual timeline; stops re-arming
  // once the query workload drains so env.Run() can terminate.
  std::function<void()> telemetry_tick;
  if (obs != nullptr && obs->telemetry != nullptr && obs->snapshots != nullptr &&
      obs->telemetry_interval_us > 0) {
    telemetry_tick = [&] {
      obs->snapshots->push_back(obs->telemetry->SnapshotJson(env.now()));
      if (completed >= total_requests) return;
      env.ScheduleAfter(obs->telemetry_interval_us, telemetry_tick);
    };
    env.ScheduleAfter(obs->telemetry_interval_us, telemetry_tick);
  }

  for (std::uint32_t c = 0; c < concurrency && c < total_requests; ++c) issue();
  env.Run();

  if (obs != nullptr && obs->telemetry != nullptr && obs->snapshots != nullptr) {
    obs->snapshots->push_back(obs->telemetry->SnapshotJson(env.now()));
  }

  report.requests = completed;
  if (last_completion > 0) {
    report.qps = static_cast<double>(completed) * 1e6 / static_cast<double>(last_completion);
  }
  return report;
}

HeliosDeployment::AdmissionServeReport HeliosDeployment::EmulateAdmissionServing(
    const std::vector<graph::VertexId>& seeds, double rate_qps, std::uint64_t total_requests,
    std::int64_t deadline_us, AdmissionQueue::Options admission, gnn::GraphSageEncoder* encoder,
    obs::TelemetryHub* telemetry) {
  sim::SimEnv env;
  const std::uint32_t N = config_.serving_nodes;
  sim::SimCluster::Options copt;
  copt.num_nodes = N;
  copt.cores_per_node = config_.serving_threads;
  copt.net_latency_us = config_.net_latency_us;
  copt.gbps = config_.gbps;
  sim::SimCluster cluster(env, copt);

  AdmissionServeReport report;
  // Per-worker front doors on the deployment registry (lane = worker).
  // Overload probe: the TelemetryHub health signal when wired, else never
  // (shed_full still bounds the queues) — matching the threaded runtime.
  std::vector<std::unique_ptr<AdmissionQueue>> queues;
  for (std::uint32_t w = 0; w < N; ++w) {
    AdmissionQueue::Options ao = admission;
    ao.registry = &registry_;
    ao.lane = std::to_string(w);
    if (telemetry != nullptr && !ao.overloaded) {
      ao.overloaded = [telemetry] { return telemetry->Overloaded(); };
    }
    queues.push_back(std::make_unique<AdmissionQueue>(std::move(ao)));
  }

  const bool cached = encoder != nullptr && config_.aggregate_cache_entries > 0;
  std::vector<ServeScratch> scratch(N);
  std::vector<SampledSubgraph> results(N);
  std::vector<gnn::CachedEmbedScratch> cscratch(cached ? N : 0);
  std::vector<std::vector<float>> embeds(cached ? N : 0);

  std::uint64_t completed = 0;
  std::uint64_t completed_in_slo = 0;
  sim::SimTime last_completion = 0;
  std::vector<char> busy(N, 0);
  std::vector<std::deque<QueryTicket>> pendings(N);
  std::vector<QueryTicket> batch_buf;

  std::function<void(std::uint32_t)> pump = [&](std::uint32_t w) {
    if (busy[w]) return;
    if (pendings[w].empty()) {
      batch_buf.clear();
      queues[w]->NextBatch(env.now(), batch_buf);
      for (const QueryTicket& t : batch_buf) pendings[w].push_back(t);
    }
    if (pendings[w].empty()) return;
    busy[w] = 1;
    const QueryTicket t = pendings[w].front();
    pendings[w].pop_front();
    // Execute the real serve now; the measured wall time becomes the
    // virtual service time (the harness's executed-compute contract).
    std::size_t bytes = 0;
    const util::Nanos ns = util::TimeItNanos([&] {
      bool ok = false;
      if (cached) {
        ok = encoder->EmbedSeedCached(*serving_[w], t.seed, cscratch[w], embeds[w]);
      }
      if (ok) {
        bytes = 64 + embeds[w].size() * 4;
      } else {
        serving_[w]->ServeInto(t.seed, results[w], scratch[w]);
        bytes = ResponseBytes(results[w]);
      }
    });
    if (cached) {
      report.cache_hits += cscratch[w].result.cache_hits;
      report.cache_misses += cscratch[w].result.cache_misses;
      report.stale_recomputes += cscratch[w].result.stale_recomputes;
    }
    const sim::SimTime service =
        std::max<sim::SimTime>(static_cast<sim::SimTime>(ns / 1000), 1);
    cluster.cpu(w).Enqueue(service, [&, w, t, bytes] {
      const sim::SimTime lat = env.now() - t.enqueue_us;
      report.latency_us.Record(static_cast<std::uint64_t>(lat));
      if (static_cast<std::int64_t>(env.now()) <= t.deadline_us) completed_in_slo++;
      if (telemetry != nullptr) {
        telemetry->RecordQuery(w, env.now(), static_cast<std::uint64_t>(lat), bytes,
                               static_cast<std::uint64_t>(t.deadline_us - t.enqueue_us));
      }
      queues[w]->NoteServed(t.seed);
      completed++;
      last_completion = env.now();
      busy[w] = 0;
      pump(w);
    });
  };

  gen::ArrivalProcess arrivals(rate_qps, config_.seed ^ 0xAD0515);
  util::Rng pick(config_.seed ^ 0x5EED5);
  const double per_us = rate_qps / 1e6;
  double credit = 0;  // fractional arrivals carried across 1µs ticks
  std::function<void()> arrive = [&] {
    if (report.offered >= total_requests) return;
    // Above 1M qps the emulator's µs clock cannot space arrivals out;
    // batch the per-tick surplus instead of silently capping the rate.
    std::uint64_t n = 1;
    if (per_us > 1.0) {
      credit += per_us;
      n = static_cast<std::uint64_t>(credit);
      credit -= static_cast<double>(n);
    }
    for (std::uint64_t i = 0; i < n && report.offered < total_requests; ++i) {
      report.offered++;
      const graph::VertexId seed = seeds[pick.Uniform(seeds.size())];
      const std::uint32_t w = map_.ServingWorkerOf(seed);
      QueryTicket t;
      t.seed = seed;
      t.deadline_us = static_cast<std::int64_t>(env.now()) + deadline_us;
      if (queues[w]->Offer(t, env.now()) == AdmissionQueue::Outcome::kAdmitted) pump(w);
    }
    if (report.offered < total_requests) {
      const sim::SimTime gap =
          per_us > 1.0 ? 1 : arrivals.NextAfter(env.now()) - env.now();
      env.ScheduleAfter(gap, arrive);
    }
  };

  // Periodic window advance keeps the overload signal live on virtual time;
  // self-terminates once the run drains so env.Run() can return.
  std::function<void()> advance_tick;
  if (telemetry != nullptr) {
    advance_tick = [&] {
      telemetry->Advance(env.now());
      std::uint64_t shed = 0;
      for (const auto& q : queues) shed += q->stats().shed();
      if (report.offered >= total_requests && completed + shed >= report.offered) return;
      env.ScheduleAfter(100'000, advance_tick);
    };
    env.ScheduleAfter(100'000, advance_tick);
  }

  arrive();
  env.Run();

  for (const auto& q : queues) {
    const AdmissionQueue::Stats s = q->stats();
    report.admitted += s.admitted;
    report.shed_full += s.shed_full;
    report.shed_overload += s.shed_overload;
    report.shed_deadline += s.shed_deadline;
  }
  report.completed = completed;
  report.makespan_us = last_completion;
  if (last_completion > 0) {
    report.qps = static_cast<double>(completed) * 1e6 / static_cast<double>(last_completion);
  }
  if (completed > 0) {
    report.slo_hit_rate = static_cast<double>(completed_in_slo) / static_cast<double>(completed);
  }
  return report;
}

std::size_t HeliosDeployment::ServingCacheBytes() const {
  std::size_t bytes = 0;
  for (const auto& core : serving_) {
    const auto stats = core->CacheStats();
    bytes += stats.memory_bytes + stats.disk_bytes;
  }
  return bytes;
}

std::size_t HeliosDeployment::SamplingStateBytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->ApproximateBytes();
  return bytes;
}

// ============================================================ MiniGraphDB

GraphDbDeployment::GraphDbDeployment(QueryPlan plan, graphdb::CostProfile profile,
                                     GraphDbEmuConfig config)
    : plan_(std::move(plan)), profile_(std::move(profile)), config_(std::move(config)) {
  db_ = std::make_unique<graphdb::MiniGraphDB>(config_.nodes, 8, profile_);
}

void GraphDbDeployment::IngestAll(const std::vector<graph::GraphUpdate>& updates) {
  for (const auto& u : updates) db_->Ingest(u);
}

IngestReport GraphDbDeployment::EmulateIngestion(const std::vector<graph::GraphUpdate>& updates,
                                                 double offered_rate_mps) {
  sim::SimEnv env;
  sim::SimCluster::Options copt;
  copt.num_nodes = config_.nodes + 1;
  copt.cores_per_node = config_.threads;
  copt.net_latency_us = config_.net_latency_us;
  copt.gbps = config_.gbps;
  sim::SimCluster cluster(env, copt);
  const std::uint32_t producer = config_.nodes;

  // Strong consistency: one writer queue per partition (coarse lock).
  std::vector<SerialQueue> queues(config_.nodes);
  std::vector<std::unique_ptr<sim::Resource>> cpus;
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    cpus.push_back(std::make_unique<sim::Resource>(env, config_.threads));
    queues[n].Attach(cpus[n].get());
  }

  IngestReport report;
  report.updates = updates.size();
  const double rate_per_us = offered_rate_mps;

  for (std::size_t start = 0; start < updates.size(); start += kChunk) {
    const std::size_t end = std::min(start + kChunk, updates.size());
    const sim::SimTime arrival =
        rate_per_us > 0 ? static_cast<sim::SimTime>(static_cast<double>(start) / rate_per_us)
                        : 0;
    env.ScheduleAt(arrival, [&, start, end, arrival] {
      std::vector<std::vector<graph::GraphUpdate>> per_part(config_.nodes);
      for (std::size_t i = start; i < end; ++i) {
        const auto& u = updates[i];
        const graph::VertexId routing = std::visit(
            [](const auto& x) {
              using T = std::decay_t<decltype(x)>;
              if constexpr (std::is_same_v<T, graph::EdgeUpdate>) {
                return x.src;
              } else {
                return x.id;
              }
            },
            u);
        per_part[db_->PartitionOf(routing)].push_back(u);
      }
      for (std::uint32_t p = 0; p < config_.nodes; ++p) {
        if (per_part[p].empty()) continue;
        const std::size_t count = per_part[p].size();
        cluster.Send(producer, p, count * 40,
                     [&, p, batch = std::move(per_part[p]), arrival, count]() mutable {
                       queues[p].Submit(
                           [&, p, batch = std::move(batch), count]() -> util::Nanos {
                             const auto t = util::TimeItNanos([&] {
                               for (const auto& u : batch) db_->Ingest(u);
                             });
                             // WAL / replication overhead per write.
                             return t + static_cast<util::Nanos>(count) *
                                            profile_.per_write_overhead_us * 1000;
                           },
                           [&, arrival, count] {
                             for (std::size_t i = 0; i < count; ++i) {
                               report.latency_us.Record(
                                   static_cast<std::uint64_t>(env.now() - arrival));
                             }
                           });
                     });
      }
    });
  }

  env.Run();
  report.makespan_us = env.now();
  report.throughput_mps =
      report.makespan_us > 0
          ? static_cast<double>(updates.size()) / static_cast<double>(report.makespan_us)
          : 0;
  return report;
}

ServeReport GraphDbDeployment::EmulateServing(const std::vector<graph::VertexId>& seeds,
                                              std::uint32_t concurrency,
                                              std::uint64_t total_requests) {
  sim::SimEnv env;
  sim::SimCluster::Options copt;
  copt.num_nodes = config_.nodes + 1;
  copt.cores_per_node = config_.threads;
  copt.net_latency_us = config_.net_latency_us;
  copt.gbps = config_.gbps;
  sim::SimCluster cluster(env, copt);
  const std::uint32_t client_node = config_.nodes;

  ServeReport report;
  util::Rng rng(config_.seed ^ 0xBA5E);
  std::uint64_t issued = 0, completed = 0;
  sim::SimTime last_completion = 0;

  struct Request {
    graph::VertexId seed;
    std::uint32_t qnode = 0;  // node executing the query
    sim::SimTime t0 = 0;
    std::vector<graphdb::QueryTrace::Node> frontier;
    std::vector<std::vector<graphdb::QueryTrace::Node>> layers;
    std::size_t hop = 0;
    std::size_t pending_partitions = 0;
    std::vector<graphdb::HopSample> hop_samples;
    double interpret_us = 0;  // query-node interpretation debt this hop
  };

  std::function<void()> issue;
  std::function<void(std::shared_ptr<Request>)> run_hop;
  std::function<void(std::shared_ptr<Request>)> finish;

  finish = [&](std::shared_ptr<Request> req) {
    // Feature fetch round: sampled vertices grouped by owner partition.
    std::size_t response_bytes = 64;
    for (const auto& layer : req->layers) response_bytes += layer.size() * 24;
    cluster.Send(req->qnode, client_node, response_bytes, [&, req] {
      report.latency_us.Record(static_cast<std::uint64_t>(env.now() - req->t0));
      completed++;
      last_completion = env.now();
      issue();
    });
  };

  run_hop = [&](std::shared_ptr<Request> req) {
    if (req->hop >= plan_.num_hops()) {
      finish(req);
      return;
    }
    const OneHopQuery& hop = plan_.one_hop[req->hop];
    // Scatter the frontier by owner partition.
    auto by_partition = std::make_shared<
        std::vector<std::vector<std::pair<std::uint32_t, graph::VertexId>>>>(config_.nodes);
    for (std::uint32_t i = 0; i < req->frontier.size(); ++i) {
      (*by_partition)[db_->PartitionOf(req->frontier[i].vertex)].emplace_back(
          i, req->frontier[i].vertex);
    }
    req->pending_partitions = 0;
    req->hop_samples.clear();
    for (std::uint32_t p = 0; p < config_.nodes; ++p) {
      if (!(*by_partition)[p].empty()) req->pending_partitions++;
    }
    if (req->pending_partitions == 0) {
      req->layers.push_back({});
      req->frontier.clear();
      req->hop++;
      run_hop(req);
      return;
    }
    auto partition_done = [&, req] {
      if (--req->pending_partitions > 0) return;
      // Gather complete: build the next frontier.
      std::vector<graphdb::QueryTrace::Node> next;
      next.reserve(req->hop_samples.size());
      for (const auto& s : req->hop_samples) next.push_back({s.edge.dst, s.parent_index});
      req->layers.push_back(next);
      req->frontier = std::move(next);
      req->hop++;
      // Interpretation of this hop's adjacency, single-threaded on the
      // query node (a query is one GSQL thread), plus per-hop overhead.
      const sim::SimTime service =
          profile_.per_hop_overhead_us +
          std::max<sim::SimTime>(static_cast<sim::SimTime>(req->interpret_us), 1);
      req->interpret_us = 0;
      cluster.cpu(req->qnode).Enqueue(service, [&, req] { run_hop(req); });
    };
    // "Regular query mode" (§7.1): the query executes on one server
    // (qnode). Remote partitions only serve storage reads — they ship the
    // scanned adjacency back, paying a small storage-access share of the
    // per-visit cost; the interpretation cost (the dominant term) is paid
    // on the query node, serialized per query. This is what makes
    // distributed execution *slower* than single-machine (Fig 4(d)): same
    // total compute, plus per-hop network rounds and adjacency shipping.
    for (std::uint32_t p = 0; p < config_.nodes; ++p) {
      if ((*by_partition)[p].empty()) continue;
      const std::size_t req_bytes = 32 + (*by_partition)[p].size() * 12;
      cluster.Send(req->qnode, p, req_bytes, [&, req, p, by_partition, &hop = hop,
                                              partition_done] {
        auto samples = std::make_shared<std::vector<graphdb::HopSample>>();
        std::uint64_t traversed = 0;
        const auto measured = util::TimeIt([&] {
          util::Rng hop_rng(rng.Next());
          db_->SampleHopOnPartition(p, (*by_partition)[p], hop, hop_rng, *samples, traversed);
        });
        const double visit_cost =
            static_cast<double>(traversed) * profile_.per_vertex_visit_us;
        const bool local = p == req->qnode;
        // Storage-access share at the owning partition (parallel across
        // partitions — genuinely concurrent disks/machines).
        const sim::SimTime storage_service = std::max<sim::SimTime>(
            measured + static_cast<sim::SimTime>(visit_cost * 0.25), 1);
        // Interpretation debt accrues to the query node; remote slices
        // additionally pay (de)serialization of the shipped adjacency.
        req->interpret_us += visit_cost * (local ? 0.75 : 1.25);
        cluster.cpu(p).Enqueue(storage_service, [&, req, p, samples, traversed,
                                                 partition_done] {
          const std::size_t resp_bytes = 32 + traversed * 20;  // shipped adjacency
          cluster.Send(p, req->qnode, resp_bytes, [req, samples, partition_done] {
            req->hop_samples.insert(req->hop_samples.end(), samples->begin(),
                                    samples->end());
            partition_done();
          });
        });
      });
    }
  };

  issue = [&] {
    if (issued >= total_requests) return;
    issued++;
    auto req = std::make_shared<Request>();
    req->seed = seeds[rng.Uniform(seeds.size())];
    req->qnode = db_->PartitionOf(req->seed);
    req->t0 = env.now();
    req->frontier.push_back({req->seed, 0});
    req->layers.push_back(req->frontier);
    cluster.Send(client_node, req->qnode, 64, [&, req] {
      cluster.cpu(req->qnode).Enqueue(profile_.per_query_overhead_us,
                                      [&, req] { run_hop(req); });
    });
  };

  for (std::uint32_t c = 0; c < concurrency && c < total_requests; ++c) issue();
  env.Run();

  report.requests = completed;
  if (last_completion > 0) {
    report.qps = static_cast<double>(completed) * 1e6 / static_cast<double>(last_completion);
  }
  return report;
}

// ============================================================ helpers

QueryPlan PaperQuery(const gen::DatasetSpec& spec, Strategy strategy, std::size_t hops) {
  SamplingQuery q;
  q.id = spec.name + "-" + StrategyName(strategy);
  std::vector<std::uint32_t> fanouts = hops >= 3 ? std::vector<std::uint32_t>{25, 10, 5}
                                                 : std::vector<std::uint32_t>{25, 10};
  // Table 2 meta-paths, expressed over each dataset's schema.
  std::vector<graph::EdgeTypeId> edges;
  if (spec.name == "BI") {
    q.seed_type = 0;  // Person-Knows-Person-Likes-Comment
    edges = {0, 1};
  } else if (spec.name == "INTER") {
    q.seed_type = 0;  // Forum-Has-Person-Knows-Person[-Knows-Person]
    edges = hops >= 3 ? std::vector<graph::EdgeTypeId>{0, 1, 1}
                      : std::vector<graph::EdgeTypeId>{0, 1};
  } else if (spec.name == "FIN") {
    q.seed_type = 0;  // Account-TransferTo-Account-TransferTo-Account
    edges = {0, 0};
  } else {  // Taobao
    q.seed_type = 0;  // User-Click-Item-CoPurchase-Item
    edges = {0, 1};
  }
  for (std::size_t k = 0; k < edges.size(); ++k) {
    q.hops.push_back({edges[k], fanouts[k], strategy});
  }
  auto plan = Decompose(q, spec.schema);
  return plan.value();
}

std::pair<graph::VertexTypeId, std::uint64_t> PaperSeeds(const gen::DatasetSpec& spec) {
  // Seed type 0 for every Table 2 query.
  return {0, spec.vertices_per_type[0]};
}

void PrintHeader(const std::string& title, const std::string& columns) {
  std::printf("\n== %s ==\n%s\n", title.c_str(), columns.c_str());
}

void PrintServeRow(const std::string& system, const std::string& dataset,
                   const std::string& strategy, std::uint32_t concurrency,
                   const ServeReport& report) {
  std::printf("%-12s %-8s %-10s conc=%-4u qps=%-9.0f avg_ms=%-8.2f p99_ms=%-8.2f",
              system.c_str(), dataset.c_str(), strategy.c_str(), concurrency, report.qps,
              report.latency_us.Mean() / 1000.0,
              static_cast<double>(report.latency_us.P99()) / 1000.0);
  if (report.read_path_ns.count() > 0) {
    // Real-CPU cost of the cache read path alone (what BM_ServePath
    // micro-benchmarks), as opposed to the emulated end-to-end latency.
    std::printf(" read_us=%.1f/p99=%.1f", report.read_path_ns.Mean() / 1000.0,
                static_cast<double>(report.read_path_ns.P99()) / 1000.0);
  }
  std::printf("\n");
}

void IngestReport::PrintStageBreakdown() const {
  struct Row {
    const char* name;
    const util::Histogram* hist;
  };
  const Row rows[] = {{"ingest (queue wait)", &stage_ingest_us},
                      {"sample (shard core)", &stage_sample_us},
                      {"cascade (sub-delta)", &stage_cascade_us},
                      {"cache_apply (serving)", &stage_cache_apply_us},
                      {"e2e (publish->applied)", &latency_us}};
  std::printf("  %-24s %10s %10s %10s %10s %10s\n", "stage", "count", "mean_us", "p50_us",
              "p99_us", "p999_us");
  for (const auto& row : rows) {
    std::printf("  %-24s %10llu %10.1f %10llu %10llu %10llu\n", row.name,
                static_cast<unsigned long long>(row.hist->count()), row.hist->Mean(),
                static_cast<unsigned long long>(row.hist->P50()),
                static_cast<unsigned long long>(row.hist->P99()),
                static_cast<unsigned long long>(row.hist->P999()));
  }
  if (diss_batches > 0) {
    std::printf(
        "  dissemination: %llu batches, %llu msgs (occupancy mean=%.1f p99=%llu), "
        "%llu coalesced away, %.2f MB on wire\n",
        static_cast<unsigned long long>(diss_batches),
        static_cast<unsigned long long>(diss_messages), batch_occupancy.Mean(),
        static_cast<unsigned long long>(batch_occupancy.P99()),
        static_cast<unsigned long long>(diss_coalesced),
        static_cast<double>(diss_bytes_wire) / 1e6);
  }
}

void DumpObservability(const util::Config& config,
                       const obs::MetricsRegistry::Snapshot* snapshot,
                       const obs::TraceBuffer* trace) {
  // Canonical spellings are --metrics-out= / --trace-out= (shared across all
  // fig binaries); the legacy metrics= / trace= keys stay accepted.
  const std::string metrics_path = config.GetString("metrics-out", config.GetString("metrics", ""));
  if (!metrics_path.empty() && snapshot != nullptr) {
    const bool json = metrics_path.size() > 5 &&
                      metrics_path.compare(metrics_path.size() - 5, 5, ".json") == 0;
    const std::string body = json ? snapshot->ToJson() : snapshot->Dump();
    if (metrics_path == "-") {
      std::printf("%s", body.c_str());
    } else if (std::FILE* f = std::fopen(metrics_path.c_str(), "wb")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("  metrics snapshot -> %s\n", metrics_path.c_str());
    } else {
      std::printf("  ! cannot write metrics file %s\n", metrics_path.c_str());
    }
  }
  const std::string trace_path = config.GetString("trace-out", config.GetString("trace", ""));
  if (!trace_path.empty() && trace != nullptr) {
    const auto status = trace->WriteFile(trace_path);
    if (status.ok()) {
      std::printf("  trace (%zu events, %llu dropped) -> %s\n", trace->size(),
                  static_cast<unsigned long long>(trace->dropped()), trace_path.c_str());
    } else {
      std::printf("  ! %s\n", status.message().c_str());
    }
  }
}

bool TraceRequested(const util::Config& config) {
  return !config.GetString("trace-out", config.GetString("trace", "")).empty();
}

bool TelemetryRequested(const util::Config& config) {
  return !config.GetString("telemetry-out", "").empty();
}

std::int64_t TelemetryIntervalUs(const util::Config& config) {
  const std::int64_t interval = config.GetInt("telemetry-interval", 250'000);
  return interval > 0 ? interval : 250'000;
}

void DumpTelemetry(const util::Config& config, const std::vector<std::string>& snapshots) {
  const std::string path = config.GetString("telemetry-out", "");
  if (path.empty() || snapshots.empty()) return;
  std::string body = "[\n";
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    body += snapshots[i];
    body += i + 1 < snapshots.size() ? ",\n" : "\n";
  }
  body += "]\n";
  if (path == "-") {
    std::printf("%s", body.c_str());
  } else if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("  telemetry (%zu snapshots) -> %s\n", snapshots.size(), path.c_str());
  } else {
    std::printf("  ! cannot write telemetry file %s\n", path.c_str());
  }
}

std::uint64_t ScaleFromConfig(const util::Config& config, std::uint64_t fallback) {
  const auto scale = static_cast<std::uint64_t>(config.GetInt("scale", 0));
  if (scale > 0) return scale;
  if (config.GetBool("quick", false)) return fallback * 8;
  return fallback;
}

gen::QuerySkew QuerySkewFromConfig(const util::Config& config, double fallback_alpha) {
  gen::QuerySkew skew;
  skew.alpha = config.GetDouble("zipf", fallback_alpha);
  skew.seed = static_cast<std::uint64_t>(config.GetInt("zipf-seed", 77));
  return skew;
}

}  // namespace helios::bench
