// Figure 20 (extension): fault recovery of the sampling tier. Crash one
// sampling node mid-ingestion, detect it by heartbeat supervision, restore
// the latest checkpoint, replay the durable log tail with epoch/seq fencing
// at the serving side, and re-admit the node.
//
// Shape to reproduce: the applied-at-serving throughput timeline dips while
// the victim is down and climbs back after re-admission; the recovered run
// converges to byte-identical serving caches vs a crash-free run (zero lost,
// zero duplicated updates — docs/FAULT_TOLERANCE.md).
//
// Usage: fig20_recovery [scale=1200] [--metrics-out=-|out.json]
//
// Exits non-zero if the recovered run's serving caches diverge from the
// crash-free run's, or if replay double-counts dissemination.* metrics.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "bench/harness.h"
#include "helios/threaded_cluster.h"
#include "util/clock.h"

using namespace helios;

namespace {

void PrintTimeline(const bench::IngestReport& r) {
  if (r.applied_timeline.empty()) return;
  std::uint64_t peak = 1;
  for (auto v : r.applied_timeline) peak = std::max(peak, v);
  std::printf("  applied-at-serving timeline (bucket=%lld virtual us):\n",
              static_cast<long long>(r.timeline_bucket_us));
  for (std::size_t b = 0; b < r.applied_timeline.size(); ++b) {
    const sim::SimTime t0 = static_cast<sim::SimTime>(b) * r.timeline_bucket_us;
    const int bar = static_cast<int>(50 * r.applied_timeline[b] / peak);
    std::string marks;
    if (r.fault_killed_at_us >= t0 && r.fault_killed_at_us < t0 + r.timeline_bucket_us)
      marks += " <- kill";
    if (r.fault_detected_at_us >= t0 && r.fault_detected_at_us < t0 + r.timeline_bucket_us)
      marks += " <- detected";
    if (r.fault_recovered_at_us >= t0 && r.fault_recovered_at_us < t0 + r.timeline_bucket_us)
      marks += " <- recovered";
    std::printf("  %8lldus |%-50.*s| %8llu%s\n", static_cast<long long>(t0), bar,
                "##################################################",
                static_cast<unsigned long long>(r.applied_timeline[b]), marks.c_str());
  }
}

// Byte-compares every serving cache of the two deployments.
bool ServingParity(bench::HeliosDeployment& a, bench::HeliosDeployment& b,
                   std::uint32_t serving_nodes) {
  bool ok = true;
  for (std::uint32_t n = 0; n < serving_nodes; ++n) {
    const auto da = a.serving_core(n).DumpCache();
    const auto db = b.serving_core(n).DumpCache();
    if (da != db) {
      std::printf("  parity MISMATCH at serving worker %u (%zu vs %zu cells)\n", n, da.size(),
                  db.size());
      // Locate the first divergent cell for diagnostics.
      auto ia = da.begin();
      auto ib = db.begin();
      std::size_t diffs = 0;
      while (ia != da.end() || ib != db.end()) {
        if (ib == db.end() || (ia != da.end() && ia->first < ib->first)) {
          if (diffs++ == 0) std::printf("    only crash-free: key %zuB\n", ia->first.size());
          ++ia;
        } else if (ia == da.end() || ib->first < ia->first) {
          if (diffs++ == 0) std::printf("    only recovered: key %zuB\n", ib->first.size());
          ++ib;
        } else {
          if (ia->second != ib->second && diffs++ < 3) {
            const std::string& k = ia->first;
            graph::VertexId v = 0;
            std::uint32_t level = 0;
            if (k[0] == 's' && k.size() == 10) {
              level = static_cast<unsigned char>(k[1]);
              std::memcpy(&v, k.data() + 2, sizeof(v));
            } else if (k[0] == 'f' && k.size() == 9) {
              std::memcpy(&v, k.data() + 1, sizeof(v));
            }
            std::printf("    diff: kind=%c level=%u v=%llu shard=%u node=%u %zuB vs %zuB\n", k[0],
                        level, static_cast<unsigned long long>(v), a.map().ShardOf(v),
                        a.map().WorkerOfShard(a.map().ShardOf(v)), ia->second.size(),
                        ib->second.size());
            auto dump = [](const std::string& val) {
              if (val.size() < 12 || (val.size() - 12) % 20 != 0) return;
              std::uint32_t n = 0;
              std::memcpy(&n, val.data() + 8, sizeof(n));
              std::printf("      [n=%u]", n);
              for (std::uint32_t i = 0; i < n; ++i) {
                graph::VertexId dst = 0;
                std::int64_t ts = 0;
                std::memcpy(&dst, val.data() + 12 + i * 20, 8);
                std::memcpy(&ts, val.data() + 12 + i * 20 + 8, 8);
                std::printf(" %llu@%lld", static_cast<unsigned long long>(dst),
                            static_cast<long long>(ts));
              }
              std::printf("\n");
            };
            dump(ia->second);
            dump(ib->second);
          }
          ++ia;
          ++ib;
        }
      }
      std::printf("    %zu divergent cells\n", diffs);
      ok = false;
    }
  }
  return ok;
}

// Real-threads counterpart: supervisor-driven auto recovery on the actor
// runtime (kill -> heartbeat timeout -> checkpoint restore + log replay ->
// re-admission), printing the same ft.* accounting.
void ThreadedRecoverySpotCheck(const gen::DatasetSpec& spec, std::size_t limit) {
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  gen::UpdateStream stream(spec);
  auto updates = stream.Drain();
  if (updates.size() > limit) updates.resize(limit);

  ClusterOptions options;
  options.map = ShardMap{2, 2, 2};
  options.supervision_timeout = 50'000;  // 50ms heartbeat timeout
  ThreadedCluster cluster(plan, options);
  cluster.Start();
  for (std::size_t i = 0; i < updates.size() / 2; ++i) cluster.PublishUpdate(updates[i]);
  cluster.WaitForIngestIdle();
  const auto dir = std::filesystem::temp_directory_path() / "helios_fig20_ckpt";
  std::filesystem::remove_all(dir);
  const auto ckpt_begin = util::NowMicros();
  if (!cluster.Checkpoint(dir.string()).ok()) {
    std::printf("ThreadedCluster spot check: checkpoint failed, skipping\n");
    cluster.Stop();
    return;
  }
  const auto ckpt_us = util::NowMicros() - ckpt_begin;
  for (std::size_t i = updates.size() / 2; i < updates.size(); ++i)
    cluster.PublishUpdate(updates[i]);

  const auto killed = util::NowMicros();
  cluster.KillNode(0);
  // Supervisor-driven: wait for the monitor thread to detect + recover.
  while (!cluster.NodeAlive(0) && util::NowMicros() - killed < 10'000'000)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cluster.WaitForIngestIdle();

  auto snapshot = cluster.MetricsSnapshot();
  std::printf("ThreadedCluster spot check (%s, %zu updates, M=2 S=2 N=2, 50ms timeout):\n",
              spec.name.c_str(), updates.size());
  for (const auto& r : cluster.RecoveryReports()) {
    std::printf("  node %llu: detect=%lldus restore=%lldus replayed=%llu records -> epoch %u\n",
                static_cast<unsigned long long>(r.node),
                static_cast<long long>(r.time_to_detect_us), static_cast<long long>(r.restore_us),
                static_cast<unsigned long long>(r.records_to_replay), r.epoch);
  }
  std::printf("  ft: %llu updates replayed, %llu serving deltas fenced, %llu ctrl deltas fenced\n",
              static_cast<unsigned long long>(snapshot.CounterTotal("ft.updates_replayed")),
              static_cast<unsigned long long>(snapshot.CounterTotal("ft.deltas_fenced")),
              static_cast<unsigned long long>(snapshot.CounterTotal("ft.ctrl_deltas_fenced")));
  // Checkpoint-store accounting (docs/STORAGE.md): write time vs the
  // restore_us above is the fig20 recovery-time comparison for the
  // single-file segment-store backend.
  {
    store::StoreOptions so;
    so.path = (dir / "checkpoints.hstore").string();
    auto st = store::SegmentStore::Open(so, /*create=*/false);
    if (st.ok()) {
      const auto stats = st.value()->GetStats();
      std::uint64_t ckpt_bytes = 0;
      const auto infos = st.value()->List("ckpt/");
      for (const auto& info : infos) ckpt_bytes += info.committed_bytes;
      std::printf(
          "  checkpoint store: write=%lldus, %zu shard segments, %.1f KiB payload, "
          "%.1f KiB file (%llu/%llu clusters used)\n\n",
          static_cast<long long>(ckpt_us), infos.size(), static_cast<double>(ckpt_bytes) / 1024.0,
          static_cast<double>(stats.file_bytes) / 1024.0,
          static_cast<unsigned long long>(stats.clusters_total - stats.clusters_free),
          static_cast<unsigned long long>(stats.clusters_total));
    } else {
      std::printf("  checkpoint store: unavailable (%s)\n\n", st.status().message().c_str());
    }
  }
  cluster.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 1200);

  const auto spec = gen::MakeBI(scale);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);

  bench::PrintHeader("Fig 20: sampling-tier crash, detection and recovery (DES, virtual time)",
                     "phase            value");

  // Crash-free reference run: fixes the makespan (so the crash lands
  // mid-stream) and the golden serving caches for the parity check.
  bench::HeliosEmuConfig hc;
  bench::HeliosDeployment golden(plan, hc);
  const auto base = golden.EmulateIngestion(updates, /*offered_rate_mps=*/0);
  std::printf("crash-free: %.2f M records/s over %lld virtual us (%llu updates)\n",
              base.throughput_mps, static_cast<long long>(base.makespan_us),
              static_cast<unsigned long long>(base.updates));

  bench::DesFaultSpec fault;
  fault.victim_node = 0;
  fault.checkpoint_at_us = base.makespan_us / 5;
  fault.kill_at_us = base.makespan_us / 3;
  fault.detect_timeout_us = std::max<sim::SimTime>(base.makespan_us / 20, 2'000);
  fault.timeline_bucket_us = std::max<sim::SimTime>(base.makespan_us / 24, 1'000);

  bench::HeliosDeployment faulty(plan, hc);
  const auto report = faulty.EmulateIngestion(updates, 0, nullptr, &fault);

  std::printf("killed node %u at %lldus (checkpoint at %lldus)\n", fault.victim_node,
              static_cast<long long>(report.fault_killed_at_us),
              static_cast<long long>(fault.checkpoint_at_us));
  std::printf("time-to-detect:  %lld virtual us (heartbeat timeout %lldus)\n",
              static_cast<long long>(report.fault_detected_at_us - report.fault_killed_at_us),
              static_cast<long long>(fault.detect_timeout_us));
  std::printf("time-to-recover: %lld virtual us (restore + replay + re-admit, epoch %u)\n",
              static_cast<long long>(report.fault_recovered_at_us - report.fault_detected_at_us),
              report.fault_epoch);
  std::printf("exactly-once:    %llu replayed, %llu serving deltas fenced, %llu ctrl fenced\n",
              static_cast<unsigned long long>(report.fault_updates_replayed),
              static_cast<unsigned long long>(report.fault_deltas_fenced),
              static_cast<unsigned long long>(report.fault_ctrl_fenced));
  PrintTimeline(report);

  const bool parity = ServingParity(golden, faulty, hc.serving_nodes);
  std::printf("post-recovery parity vs crash-free run: %s\n", parity ? "IDENTICAL" : "MISMATCH");

  // Replay-aware metrics gate (docs/OBSERVABILITY.md): log replay re-emits
  // the victim's dissemination, but per-log-entry exactly-once counting must
  // count every disseminated message exactly once — so the faulty run's
  // counted "dissemination.messages" equals the messages actually applied at
  // the serving tier (re-emissions of already-counted work are fenced AND
  // uncounted). Without replay suppression, counted > applied by roughly the
  // fenced volume. The crash-free totals are NOT compared directly: the
  // dead window shifts when peer shards see the victim's cascaded ctrl
  // deltas, so their emission traffic legitimately diverges even though the
  // caches converge.
  std::uint64_t applied_total = 0;
  for (const auto v : report.applied_timeline) applied_total += v;
  const bool counters_match = report.diss_messages == applied_total;
  std::printf("replay-aware counting: %llu dissemination msgs counted, %llu applied -> %s\n",
              static_cast<unsigned long long>(report.diss_messages),
              static_cast<unsigned long long>(applied_total),
              counters_match ? "EXACTLY-ONCE" : "MISMATCH");
  std::printf("\n");

  ThreadedRecoverySpotCheck(spec, /*limit=*/20000);

  const auto snapshot = faulty.registry().TakeSnapshot();
  bench::DumpObservability(config, &snapshot, nullptr);
  return parity && counters_match ? 0 : 1;
}
