// Ablations of the design decisions DESIGN.md calls out:
//   1. event-driven pre-sampling vs ad-hoc sampling at request time
//      (per-request cost, same local data, no network);
//   2. query-aware subscription vs broadcast-everything dissemination
//      (data-plane message volume);
//   3. reservoir maintenance vs re-sample-on-update (per-update cost as a
//      function of degree).
//
// Usage: ablations [scale=4000]
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "util/clock.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 4000);

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(2000);

  // ---- 1. pre-sampling vs ad-hoc (both single-node, no network: isolates
  // the compute asymmetry that event-driven pre-sampling buys).
  {
    bench::HeliosEmuConfig hc;
    hc.sampling_nodes = 1;
    hc.serving_nodes = 1;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);

    bench::GraphDbEmuConfig dc;
    dc.nodes = 1;
    bench::GraphDbDeployment adhoc(plan, graphdb::TigerGraphProfile(), dc);
    adhoc.IngestAll(updates);

    util::Rng rng(3);
    double cache_us = 0, adhoc_us = 0;
    for (const auto seed : seeds) {
      cache_us += static_cast<double>(util::TimeIt([&] {
        (void)helios.serving_core(helios.map().ServingWorkerOf(seed)).Serve(seed);
      }));
      adhoc_us += static_cast<double>(
          util::TimeIt([&] { (void)adhoc.db().ExecuteKHop(seed, plan, rng); }));
    }
    bench::PrintHeader("Ablation 1: pre-sampled cache lookup vs ad-hoc TopK sampling "
                       "(per-request compute, single node)",
                       "variant           avg_us_per_request");
    std::printf("%-17s %.1f\n%-17s %.1f\n  -> ad-hoc costs %.1fx more compute per request\n",
                "cache-lookup", cache_us / seeds.size(), "ad-hoc", adhoc_us / seeds.size(),
                adhoc_us / cache_us);
  }

  // ---- 2. subscription vs broadcast.
  {
    bench::HeliosEmuConfig hc;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    std::uint64_t sent = 0, cells = 0, offers_selected_bound = 0;
    for (std::uint32_t s = 0; s < helios.num_shards(); ++s) {
      const auto& st = helios.shard(s).stats();
      sent += st.sample_updates_sent + st.feature_updates_sent;
      cells += st.cells;
      offers_selected_bound += st.edges_offered;
    }
    // Broadcast would push every cell refresh and feature write to every
    // serving worker. A refresh happens at most once per offered edge.
    const std::uint64_t broadcast =
        offers_selected_bound * helios.map().serving_workers;
    bench::PrintHeader("Ablation 2: query-aware subscription vs broadcast dissemination",
                       "variant          data-plane messages");
    std::printf("%-16s %llu\n%-16s %llu (upper bound)\n  -> subscription sends %.1f%% of "
                "broadcast volume\n",
                "subscription", static_cast<unsigned long long>(sent), "broadcast",
                static_cast<unsigned long long>(broadcast),
                100.0 * static_cast<double>(sent) / static_cast<double>(broadcast));
  }

  // ---- 3. reservoir vs re-sample-on-update.
  {
    bench::PrintHeader("Ablation 3: reservoir update vs re-sample-on-update (TopK fan-out 25)",
                       "degree    reservoir_ns_per_update   resample_ns_per_update");
    util::Rng rng(7);
    for (const std::size_t degree : {32u, 256u, 2048u, 16384u}) {
      // Reservoir: O(fan-out) per arriving edge.
      ReservoirCell cell(Strategy::kTopK, 25);
      const auto reservoir_us = util::TimeIt([&] {
        for (std::size_t i = 0; i < degree; ++i) {
          cell.Offer({i, static_cast<graph::Timestamp>(i), 1.0f}, rng);
        }
      });
      // Re-sample: on each arrival, re-select top-25 from the full list.
      std::vector<graph::Edge> adjacency;
      const auto resample_us = util::TimeIt([&] {
        for (std::size_t i = 0; i < degree; ++i) {
          adjacency.push_back({i, static_cast<graph::Timestamp>(i), 1.0f});
          std::vector<graph::Edge> copy = adjacency;
          const std::size_t k = std::min<std::size_t>(25, copy.size());
          std::partial_sort(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(k),
                            copy.end(), [](const graph::Edge& a, const graph::Edge& b) {
                              return a.ts > b.ts;
                            });
        }
      });
      std::printf("%-9zu %-25.0f %-25.0f\n", degree,
                  1000.0 * static_cast<double>(reservoir_us) / static_cast<double>(degree),
                  1000.0 * static_cast<double>(resample_us) / static_cast<double>(degree));
    }
    std::printf("  -> reservoir cost is degree-independent; re-sampling grows with degree "
                "(the §3.1 tail)\n");
  }
  return 0;
}
