// Figure 11: graph-update ingestion throughput (million records/s) of
// Helios (TopK and Random pre-sampling) vs the strongly consistent
// baselines, on BI / INTER / FIN stand-ins.
//
// Paper shape to reproduce: Helios ingests >= 1.32x faster than baselines
// (eventual consistency + O(fan-out) reservoir update vs coarse-locked
// sorted-index maintenance + WAL); BI is fastest for Helios because its
// many vertex updates go straight to the feature table.
//
// Usage: fig11_ingestion [scale=2000]
#include <cstdio>

#include "bench/harness.h"
#include "helios/threaded_cluster.h"

using namespace helios;

namespace {

// Real-threads counterpart of the DES stage breakdown: push a slice of the
// stream through the ThreadedCluster runtime and print the same
// dissemination.* counters, so the batching behaviour of both runtimes is
// visible side by side. Capped so the single-core actor mesh stays a spot
// check, not a benchmark.
void ThreadedDisseminationSpotCheck(const gen::DatasetSpec& spec, std::size_t limit) {
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  ClusterOptions options;
  options.map = ShardMap{2, 2, 2};
  ThreadedCluster cluster(plan, options);
  cluster.Start();
  gen::UpdateStream stream(spec);
  auto updates = stream.Drain();
  if (updates.size() > limit) updates.resize(limit);
  for (const auto& u : updates) cluster.PublishUpdate(u);
  cluster.WaitForIngestIdle();
  auto snapshot = cluster.MetricsSnapshot();
  const auto occupancy = snapshot.LatencyTotal("dissemination.batch_occupancy");
  std::printf("ThreadedCluster spot check (%s, %zu updates, M=2 S=2 N=2):\n", spec.name.c_str(),
              updates.size());
  std::printf("  dissemination: %llu batches, %llu msgs (occupancy mean=%.1f p99=%llu), "
              "%llu coalesced away, %.2f MB on wire\n\n",
              static_cast<unsigned long long>(snapshot.CounterTotal("dissemination.batches")),
              static_cast<unsigned long long>(snapshot.CounterTotal("dissemination.messages")),
              occupancy.Mean(), static_cast<unsigned long long>(occupancy.P99()),
              static_cast<unsigned long long>(snapshot.CounterTotal("dissemination.coalesced_msgs")),
              static_cast<double>(snapshot.CounterTotal("dissemination.bytes_wire")) / 1e6);
  cluster.Stop();
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  bench::PrintHeader("Fig 11: ingestion throughput (virtual M records/s, saturation)",
                     "dataset  system            throughput_mps");
  for (const auto& spec : {gen::MakeBI(scale), gen::MakeInter(scale), gen::MakeFin(scale)}) {
    gen::UpdateStream stream(spec);
    const auto updates = stream.Drain();

    double helios_min = 1e18, baseline_max = 0;
    for (const Strategy strategy : {Strategy::kTopK, Strategy::kRandom}) {
      const auto plan = bench::PaperQuery(spec, strategy, 2);
      bench::HeliosEmuConfig hc;
      bench::HeliosDeployment helios(plan, hc);
      const auto report = helios.EmulateIngestion(updates, /*offered_rate_mps=*/0);
      std::printf("%-8s Helios-%-10s %.2f\n", spec.name.c_str(), StrategyName(strategy),
                  report.throughput_mps);
      report.PrintStageBreakdown();
      helios_min = std::min(helios_min, report.throughput_mps);
    }
    const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
    for (const auto& profile : {graphdb::TigerGraphProfile(), graphdb::NebulaGraphProfile()}) {
      bench::GraphDbEmuConfig dc;
      bench::GraphDbDeployment db(plan, profile, dc);
      const auto report = db.EmulateIngestion(updates, 0);
      std::printf("%-8s %-17s %.2f\n", spec.name.c_str(), profile.name.c_str(),
                  report.throughput_mps);
      baseline_max = std::max(baseline_max, report.throughput_mps);
    }
    std::printf("  -> Helios advantage on %s: %.2fx (paper: >= 1.32x)\n\n", spec.name.c_str(),
                helios_min / baseline_max);
  }
  ThreadedDisseminationSpotCheck(gen::MakeBI(scale), /*limit=*/20000);
  return 0;
}
