// Figure 11: graph-update ingestion throughput (million records/s) of
// Helios (TopK and Random pre-sampling) vs the strongly consistent
// baselines, on BI / INTER / FIN stand-ins.
//
// Paper shape to reproduce: Helios ingests >= 1.32x faster than baselines
// (eventual consistency + O(fan-out) reservoir update vs coarse-locked
// sorted-index maintenance + WAL); BI is fastest for Helios because its
// many vertex updates go straight to the feature table.
//
// Usage: fig11_ingestion [scale=2000]
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  bench::PrintHeader("Fig 11: ingestion throughput (virtual M records/s, saturation)",
                     "dataset  system            throughput_mps");
  for (const auto& spec : {gen::MakeBI(scale), gen::MakeInter(scale), gen::MakeFin(scale)}) {
    gen::UpdateStream stream(spec);
    const auto updates = stream.Drain();

    double helios_min = 1e18, baseline_max = 0;
    for (const Strategy strategy : {Strategy::kTopK, Strategy::kRandom}) {
      const auto plan = bench::PaperQuery(spec, strategy, 2);
      bench::HeliosEmuConfig hc;
      bench::HeliosDeployment helios(plan, hc);
      const auto report = helios.EmulateIngestion(updates, /*offered_rate_mps=*/0);
      std::printf("%-8s Helios-%-10s %.2f\n", spec.name.c_str(), StrategyName(strategy),
                  report.throughput_mps);
      helios_min = std::min(helios_min, report.throughput_mps);
    }
    const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
    for (const auto& profile : {graphdb::TigerGraphProfile(), graphdb::NebulaGraphProfile()}) {
      bench::GraphDbEmuConfig dc;
      bench::GraphDbDeployment db(plan, profile, dc);
      const auto report = db.EmulateIngestion(updates, 0);
      std::printf("%-8s %-17s %.2f\n", spec.name.c_str(), profile.name.c_str(),
                  report.throughput_mps);
      baseline_max = std::max(baseline_max, report.throughput_mps);
    }
    std::printf("  -> Helios advantage on %s: %.2fx (paper: >= 1.32x)\n\n", spec.name.c_str(),
                helios_min / baseline_max);
  }
  return 0;
}
