// Figure 19: end-to-end online GNN inference — Helios sampling (4 sampling
// + 6 serving nodes) feeding a TensorFlow-Serving stand-in (4 model nodes)
// — on the INTER 2-hop query, sweeping request concurrency.
//
// Paper shape: up to ~17000 QPS with P99/avg below 100ms in most
// configurations; P99 slightly exceeds 100ms only at concurrency 800
// (client-side overload).
//
// This bench is also the observability showcase (docs/OBSERVABILITY.md):
// with the shared obs flags it holds back a tail of the update stream,
// pushes it through the emulated ingestion pipeline, and then runs the
// serving sweep with background sample-queue traffic, emitting
//   --trace-out=      one stitched Chrome trace: per-update causal flow
//                     events crossing sampler -> serving lanes, plus
//                     per-query kServe spans from the serving phase
//   --telemetry-out=  a JSON array of windowed TelemetryHub snapshots
//                     (per-worker qps/bytes/p99 + update->visibility and
//                     update->first-serve staleness percentiles)
//   --metrics-out=    the final cumulative metrics snapshot
//
// Fig 19b (docs/PERF.md "Computation reuse & admission") pushes 1-100x the
// measured sustainable rate through the SLO-aware admission front door
// under zipfian query skew: hit-heavy deadline batches drain first out of
// the computation-reuse tier, overflow sheds (serving.admission.*), and
// the completed queries' p99 stays bounded instead of collapsing.
//
// Usage: fig19_online_inference [scale=2000] [requests=1500]
//        [zipf=0.99] [zipf-seed=77] [deadline=20000]
//        [diurnal-base= diurnal-peak= diurnal-period-s=  -> sample the fig21
//         day curve instead of the fixed 1-100x multipliers]
//        [--trace-out=trace.json] [--telemetry-out=telemetry.json]
//        [--metrics-out=-] [--telemetry-interval=250000]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/clock.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1500));

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kRandom, 2);
  gen::UpdateStream stream(spec);
  auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(10000);

  const bool tracing = bench::TraceRequested(config);
  const bool telemetry_on =
      bench::TelemetryRequested(config) || !config.GetString("metrics-out", "").empty();
  const bool observing = tracing || telemetry_on;

  bench::HeliosEmuConfig hc;
  bench::HeliosDeployment helios(plan, hc);

  // Observability plumbing: one trace buffer and one telemetry hub span
  // both phases (TelemetryHub retires out-of-window buckets lazily, so the
  // serving phase restarting virtual time at 0 is fine); freshness
  // trackers are per-phase because the two phases run on distinct virtual
  // clocks.
  obs::TraceBuffer trace_buffer;
  obs::TelemetryHub::Options topt;
  topt.num_lanes = hc.serving_nodes;
  topt.lane_label = "serving_worker";
  obs::TelemetryHub telemetry(&helios.registry(), topt);
  obs::FreshnessTracker fresh_ingest(&helios.registry(), helios.num_shards(),
                                     {{"phase", "ingest"}});
  obs::FreshnessTracker fresh_serve(&helios.registry(), helios.num_shards(),
                                    {{"phase", "serve"}});
  std::vector<std::string> snapshots;
  const std::int64_t interval = bench::TelemetryIntervalUs(config);

  if (observing) {
    // Hold back a tail of the stream and run it through the emulated
    // ingestion pipeline: the trace captures real sampler->serving
    // dissemination with per-update causal flow events, and the telemetry
    // window sees update->visibility staleness per serving worker.
    const std::size_t tail = std::min<std::size_t>(updates.size() / 10, 50'000);
    const std::vector<graph::GraphUpdate> live(updates.end() - static_cast<std::ptrdiff_t>(tail),
                                               updates.end());
    updates.resize(updates.size() - tail);
    helios.IngestAll(updates);
    bench::IngestObs iobs;
    iobs.telemetry = telemetry_on ? &telemetry : nullptr;
    iobs.freshness = telemetry_on ? &fresh_ingest : nullptr;
    iobs.telemetry_interval_us = interval;
    iobs.snapshots = telemetry_on ? &snapshots : nullptr;
    helios.EmulateIngestion(live, 0, tracing ? &trace_buffer : nullptr, nullptr, &iobs);
  } else {
    helios.IngestAll(updates);
  }

  // Background sample-queue traffic for the observed serving runs, so the
  // first-serve freshness path (apply arms, query read records) is live.
  std::vector<ServingMessage> background;
  if (observing) {
    util::Rng rng(5);
    gen::SeedGenerator bg_gen(seed_type, population, 0.0, 9);
    for (int i = 0; i < 2000; ++i) {
      SampleUpdate su;
      su.level = 1;
      su.vertex = bg_gen.Next();
      su.event_ts = 1;
      for (int j = 0; j < 25; ++j) {
        su.samples.push_back({gen::MakeVertexId(1, rng.Uniform(spec.vertices_per_type[1])),
                              static_cast<graph::Timestamp>(j), 1.0f});
      }
      background.push_back(ServingMessage::Of(std::move(su)));
    }
  }

  gnn::SageConfig sage;
  sage.input_dim = spec.schema.feature_dim;
  sage.hidden_dim = 64;
  sage.output_dim = 64;
  gnn::ModelServer model(sage);

  bench::ServeObs sobs;
  sobs.trace = tracing ? &trace_buffer : nullptr;
  sobs.telemetry = telemetry_on ? &telemetry : nullptr;
  sobs.freshness = telemetry_on ? &fresh_serve : nullptr;
  sobs.telemetry_interval_us = interval;
  sobs.snapshots = telemetry_on ? &snapshots : nullptr;
  sobs.deadline_us = 100'000;  // the paper's "P99 below 100ms" bar as an SLO

  bench::PrintHeader("Fig 19: online GNN inference e2e (INTER 2-hop, 4 model nodes)",
                     "concurrency   qps        avg_ms   p99_ms");
  for (const std::uint32_t conc : {100u, 200u, 400u, 800u}) {
    const auto report = helios.EmulateServing(
        seeds, conc, std::max<std::uint64_t>(requests, conc * 4ull), &model, 4,
        observing ? &background : nullptr, observing ? 0.25 : 0.0, observing ? &sobs : nullptr);
    std::printf("conc=%-8u %-10.0f %-8.2f %-8.2f\n", conc, report.qps,
                report.latency_us.Mean() / 1000.0,
                static_cast<double>(report.latency_us.P99()) / 1000.0);
  }
  if (observing) {
    std::printf("slo(100ms) window hit rate: %.4f\n", telemetry.SloHitRate());
  }
  std::printf("\npaper shape: high qps with p99/avg below ~100ms in most cases; "
              "p99 slightly above 100ms only at the highest concurrency\n");

  // ---- Fig 19b: overload sweep through the admission front door ----
  {
    const auto skew = bench::QuerySkewFromConfig(config, 0.99);
    const auto hot_seeds = gen::HotKeyBatch(seed_type, population, skew, 10000);
    const std::int64_t deadline_us = config.GetInt("deadline", 20'000);

    bench::HeliosEmuConfig chc;
    chc.aggregate_cache_entries = 1 << 15;
    bench::HeliosDeployment cached(plan, chc);
    cached.IngestAll(updates);
    gnn::GraphSageEncoder encoder(sage);

    // Calibrate the sustainable rate from the warm cached serve path: the
    // emulated cluster serves one query per worker at a time, so capacity
    // is workers / mean-service-time.
    gnn::CachedEmbedScratch cs;
    std::vector<float> emb;
    for (int i = 0; i < 200; ++i) {
      (void)encoder.EmbedSeedCached(cached.serving_core(
                                        cached.map().ServingWorkerOf(hot_seeds[i % 200])),
                                    hot_seeds[i % 200], cs, emb);
    }
    const util::Nanos per_query_ns = util::TimeItNanos([&] {
      for (int i = 0; i < 400; ++i) {
        const graph::VertexId s = hot_seeds[i % 400];
        (void)encoder.EmbedSeedCached(cached.serving_core(cached.map().ServingWorkerOf(s)), s,
                                      cs, emb);
      }
    }) / 400;
    const double base_qps =
        0.5 * chc.serving_nodes * 1e9 / static_cast<double>(std::max<util::Nanos>(per_query_ns, 1));

    obs::TelemetryHub::Options topt2;
    topt2.num_lanes = chc.serving_nodes;
    topt2.lane_label = "serving_worker";
    topt2.overload_p99_us = static_cast<std::uint64_t>(deadline_us);
    topt2.overload_min_slo = 0.5;
    obs::TelemetryHub overload_hub(&cached.registry(), topt2);

    // Sweep points: fixed 1-100x multipliers by default; with the shared
    // diurnal flags (diurnal-peak= etc., the fig21 curve generator) the
    // sweep instead samples the day's rate curve at four phases, so the
    // admission door is exercised at exactly the loads the autoscaling
    // scenario breathes through.
    std::vector<double> mults = {1.0, 10.0, 50.0, 100.0};
    const auto diurnal = bench::DiurnalFromConfig(config, gen::DiurnalSpec{});
    if (diurnal.Enabled()) {
      mults.clear();
      for (const double f : {0.0, 0.25, 0.5, 0.75}) {
        const auto t = static_cast<std::int64_t>(f * static_cast<double>(diurnal.period_us));
        mults.push_back(gen::DiurnalRateAtUs(diurnal, t) / base_qps);
      }
    }

    bench::PrintHeader(
        "Fig 19b: admission + reuse tier at 1-100x rate (zipf " + std::to_string(skew.alpha) +
            ", deadline " + std::to_string(deadline_us / 1000) + "ms)",
        "rate_x   offered_qps   done_qps   p99_ms   slo     hit_rate   shed(full/over/dl)");
    for (const double mult : mults) {
      AdmissionQueue::Options aopt;
      aopt.max_depth = 2048;
      // Offer the overload for a fixed virtual duration, so higher rates
      // offer proportionally more queries and the queues actually fill.
      const std::uint64_t offered_target = static_cast<std::uint64_t>(
          std::max<double>(static_cast<double>(requests) * 4, base_qps * mult * 0.05));
      const auto r = cached.EmulateAdmissionServing(hot_seeds, base_qps * mult, offered_target,
                                                    deadline_us, aopt, &encoder, &overload_hub);
      const std::uint64_t looked =
          std::max<std::uint64_t>(r.cache_hits + r.cache_misses + r.stale_recomputes, 1);
      std::printf("%-8.4g %-13.0f %-10.0f %-8.2f %-7.3f %-10.3f %llu/%llu/%llu\n", mult,
                  base_qps * mult, r.qps,
                  static_cast<double>(r.latency_us.P99()) / 1000.0, r.slo_hit_rate,
                  static_cast<double>(r.cache_hits) / static_cast<double>(looked),
                  static_cast<unsigned long long>(r.shed_full),
                  static_cast<unsigned long long>(r.shed_overload),
                  static_cast<unsigned long long>(r.shed_deadline));
    }
    std::printf("\nexpected shape: p99 of completed queries stays near the deadline while "
                "shed counters absorb the overload (no queue collapse)\n");
  }

  const auto snapshot = helios.registry().TakeSnapshot();
  bench::DumpObservability(config, &snapshot, &trace_buffer);
  bench::DumpTelemetry(config, snapshots);
  return 0;
}
