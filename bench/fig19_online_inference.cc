// Figure 19: end-to-end online GNN inference — Helios sampling (4 sampling
// + 6 serving nodes) feeding a TensorFlow-Serving stand-in (4 model nodes)
// — on the INTER 2-hop query, sweeping request concurrency.
//
// Paper shape: up to ~17000 QPS with P99/avg below 100ms in most
// configurations; P99 slightly exceeds 100ms only at concurrency 800
// (client-side overload).
//
// Usage: fig19_online_inference [scale=2000] [requests=1500]
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1500));

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kRandom, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(10000);

  bench::HeliosEmuConfig hc;
  bench::HeliosDeployment helios(plan, hc);
  helios.IngestAll(updates);

  gnn::SageConfig sage;
  sage.input_dim = spec.schema.feature_dim;
  sage.hidden_dim = 64;
  sage.output_dim = 64;
  gnn::ModelServer model(sage);

  bench::PrintHeader("Fig 19: online GNN inference e2e (INTER 2-hop, 4 model nodes)",
                     "concurrency   qps        avg_ms   p99_ms");
  for (const std::uint32_t conc : {100u, 200u, 400u, 800u}) {
    const auto report = helios.EmulateServing(
        seeds, conc, std::max<std::uint64_t>(requests, conc * 4ull), &model, 4);
    std::printf("conc=%-8u %-10.0f %-8.2f %-8.2f\n", conc, report.qps,
                report.latency_us.Mean() / 1000.0,
                static_cast<double>(report.latency_us.P99()) / 1000.0);
  }
  std::printf("\npaper shape: high qps with p99/avg below ~100ms in most cases; "
              "p99 slightly above 100ms only at the highest concurrency\n");
  return 0;
}
