// Figure 12: impact of sampling/serving separation — serving throughput
// and average latency stay ~flat as the graph-update ingestion rate rises
// (INTER dataset).
//
// The pre-sampling burst lands on the sampling nodes; the only load that
// shares serving-node CPUs is the data-updating threads applying sample
// updates, which the 16-thread pools absorb. The bench sweeps the
// background apply rate from 0 to 2M updates/s.
//
// Usage: fig12_separation [scale=2000] [requests=1500]
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1500));

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kRandom, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();

  bench::HeliosEmuConfig hc;
  bench::HeliosDeployment helios(plan, hc);
  helios.IngestAll(updates);

  // Background sample-queue traffic: re-apply a slice of realistic sample
  // updates (what a live update burst would push to serving workers).
  std::vector<ServingMessage> background;
  {
    util::Rng rng(5);
    gen::SeedGenerator seed_gen(0, spec.vertices_per_type[0], 0.0, 9);
    for (int i = 0; i < 2000; ++i) {
      SampleUpdate su;
      su.level = 1;
      su.vertex = seed_gen.Next();
      su.event_ts = 1;
      for (int j = 0; j < 25; ++j) {
        su.samples.push_back({gen::MakeVertexId(1, rng.Uniform(spec.vertices_per_type[1])),
                              static_cast<graph::Timestamp>(j), 1.0f});
      }
      background.push_back(ServingMessage::Of(std::move(su)));
    }
  }

  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(10000);

  bench::PrintHeader("Fig 12: serving stability under rising ingestion (INTER, Random, conc 200)",
                     "ingest_rate_mps   qps        avg_ms   p99_ms");
  for (const double rate : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    const auto report = helios.EmulateServing(seeds, 200, requests, nullptr, 4,
                                              rate > 0 ? &background : nullptr, rate);
    std::printf("%-17.2f %-10.0f %-8.2f %-8.2f\n", rate, report.qps,
                report.latency_us.Mean() / 1000.0,
                static_cast<double>(report.latency_us.P99()) / 1000.0);
  }
  std::printf("\nexpected shape: qps and latency ~flat across ingestion rates (paper Fig 12)\n");
  return 0;
}
