// Table 1 (dataset statistics) and Table 2 (sampling queries).
//
// Regenerates the scaled synthetic datasets, loads each into a dynamic
// graph store and prints the measured statistics next to the published
// Table 1 numbers (the *ratios* — edge:vertex, max:avg degree — are what
// the generators are calibrated to preserve; absolute counts are divided
// by `scale`). Then prints the Table 2 query set as decomposed plans.
//
// Usage: table1_datasets [scale=2000]
#include <cstdio>

#include "bench/harness.h"
#include "graph/dynamic_graph.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  bench::PrintHeader("Table 1: Dataset Statistics (scaled 1/" + std::to_string(scale) + ")",
                     "dataset   vertices    edges       featdim  out-deg(max/min/avg)   "
                     "paper(V/E/maxdeg/avgdeg)");
  for (const auto& spec : gen::AllDatasets(scale)) {
    graph::DynamicGraphStore store(spec.schema.edge_type_names.size());
    gen::UpdateStream stream(spec);
    graph::GraphUpdate u;
    while (stream.Next(u)) store.Apply(u);

    // Aggregate degree stats across edge types (out-degree over all types,
    // as Table 1 reports).
    std::uint64_t max_deg = 0, edges = 0;
    for (std::size_t t = 0; t < spec.schema.edge_type_names.size(); ++t) {
      const auto s = store.ComputeDegreeStats(static_cast<graph::EdgeTypeId>(t));
      max_deg = std::max(max_deg, s.max_out_degree);
      edges += s.edge_count;
    }
    const double avg = static_cast<double>(edges) / static_cast<double>(store.vertex_count());
    const auto paper = gen::PaperStatsFor(spec.name);
    std::printf("%-9s %-11llu %-11llu %-8zu %llu/0/%-14.2f %.2gB/%.2gB/%g/%g\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(store.vertex_count()),
                static_cast<unsigned long long>(edges), spec.schema.feature_dim,
                static_cast<unsigned long long>(max_deg), avg, paper.vertices / 1e9,
                paper.edges / 1e9, paper.max_deg, paper.avg_deg);
  }

  bench::PrintHeader("Table 2: Sampling Queries", "dataset   pattern -> decomposed one-hop plan");
  struct Row {
    const char* dataset;
    const char* pattern;
    std::size_t hops;
  };
  const Row rows[] = {
      {"BI", "Person-Knows-Person-Likes-Comment", 2},
      {"INTER", "Forum-Has-Person-Knows-Person", 2},
      {"FIN", "Account-TransferTo-Account-TransferTo-Account", 2},
      {"Taobao", "User-Click-Item-CoPurchase-Item", 2},
      {"INTER", "Forum-Has-Person-Knows-Person-Knows-Person", 3},
  };
  auto specs = gen::AllDatasets(scale);
  for (const auto& row : rows) {
    const gen::DatasetSpec* spec = nullptr;
    for (const auto& s : specs) {
      if (s.name == row.dataset) spec = &s;
    }
    const auto plan = bench::PaperQuery(*spec, Strategy::kTopK, row.hops);
    std::printf("%-9s %s\n          fan-outs [", row.dataset, row.pattern);
    for (std::size_t k = 0; k < plan.one_hop.size(); ++k) {
      std::printf("%s%u", k ? "," : "", plan.one_hop[k].fanout);
    }
    std::printf("]  ->");
    for (const auto& q : plan.one_hop) {
      std::printf(" Q%u(%s on %s)", q.hop, StrategyName(q.strategy),
                  spec->schema.edge_type_names[q.edge_type].c_str());
    }
    std::printf("\n");
  }
  return 0;
}
