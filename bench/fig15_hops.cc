// Figure 15: impact of sampling hop count — 2-hop [25,10] vs 3-hop
// [25,10,5] on INTER (Random, 4 sampling + 6 serving nodes).
//
// Paper shape: the 3-hop query multiplies per-request work ~5x, so QPS
// drops (but stays above ~5000) and latency rises; at low concurrency the
// 3-hop P99 stays under 100ms.
//
// Usage: fig15_hops [scale=2000] [requests=1500]
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1500));

  const auto spec = gen::MakeInter(scale);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(10000);

  bench::PrintHeader("Fig 15: 2-hop [25,10] vs 3-hop [25,10,5] serving (INTER, Random)",
                     "hops  concurrency   qps        avg_ms   p99_ms");
  for (const std::size_t hops : {2u, 3u}) {
    const auto plan = bench::PaperQuery(spec, Strategy::kRandom, hops);
    bench::HeliosEmuConfig hc;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    for (const std::uint32_t conc : {100u, 200u, 400u}) {
      const auto report =
          helios.EmulateServing(seeds, conc, std::max<std::uint64_t>(requests, conc * 4ull));
      std::printf("%-5zu conc=%-8u %-10.0f %-8.2f %-8.2f\n", hops, conc, report.qps,
                  report.latency_us.Mean() / 1000.0,
                  static_cast<double>(report.latency_us.P99()) / 1000.0);
    }
  }
  std::printf("\nexpected shape: 3-hop qps lower (~5x work) but still high; 3-hop p99 <100ms "
              "at conc 100 (paper Fig 15)\n");
  return 0;
}
