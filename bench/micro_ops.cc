// Micro/calibration benchmarks (google-benchmark): the per-operation costs
// that the cluster emulator's measured service times are built from.
// Useful for sanity-checking emulated numbers and for regression-tracking
// the hot paths.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <new>

#include <filesystem>

#include "bench/harness.h"
#include "kv/kv_store.h"
#include "mq/mq.h"
#include "store/segment_store.h"
#include "util/aligned.h"
#include "util/simd.h"

using namespace helios;

// ------------------------------------------------ allocation counting
//
// Global operator new/delete override with a per-thread counter, so
// BM_ServePathZeroCopy can assert the "zero heap allocations in
// steady-state Serve()" contract instead of merely claiming it. The
// counter only counts — allocation itself is plain malloc, so every other
// benchmark is unaffected.

namespace {
thread_local std::uint64_t g_alloc_count = 0;
}  // namespace

// Both replacements allocate with malloc/free consistently; the compiler
// just cannot see through the counting operator new and flags every
// inlined delete as mismatched.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Over-aligned variants (util::AlignedVector routes through these): same
// counting, so the 0-allocs/query assertion also covers the 32-byte
// aligned arenas. aligned_alloc wants size a multiple of the alignment.
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

// ---------------------------------------------------------- reservoir

static void BM_ReservoirOffer(benchmark::State& state) {
  const auto strategy = static_cast<Strategy>(state.range(0));
  const auto fanout = static_cast<std::uint32_t>(state.range(1));
  util::Rng rng(1);
  ReservoirCell cell(strategy, fanout);
  graph::Timestamp ts = 0;
  for (auto _ : state) {
    cell.Offer({rng.Next() % 100000, ++ts, 1.0f}, rng);
  }
}
BENCHMARK(BM_ReservoirOffer)
    ->Args({0, 2})
    ->Args({0, 25})
    ->Args({1, 2})
    ->Args({1, 25})
    ->Args({2, 25});

// ---------------------------------------------------------------- kv

static void BM_KvPutGet(benchmark::State& state) {
  kv::KvStore store({});
  util::Rng rng(2);
  std::string value(64, 'v'), out;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(rng.Uniform(100000));
    store.Put(key, value);
    benchmark::DoNotOptimize(store.Get(key, out));
  }
}
BENCHMARK(BM_KvPutGet);

// ---------------------------------------------------------------- store

// Append path of the segment store (docs/STORAGE.md): CRC32C framing +
// cluster-chain bookkeeping, group commit amortized over 1 MiB batches.
static void BM_StoreAppend(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() / "bench_store_append.hstore";
  std::filesystem::remove(path);
  store::StoreOptions options;
  options.path = path.string();
  options.sync = false;  // measure framing + chaining, not the disk
  auto st = std::move(store::SegmentStore::Open(options).value());
  const std::uint64_t seg = st->Create("bench").value();
  const std::string value(256, 'v');
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(st->Append(seg, "k" + std::to_string(rng.Uniform(1 << 20)), value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(value.size()));
  st.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreAppend);

// Bloom-indexed point reads over a sealed spill run — the kv ViewInShard
// disk path.
static void BM_StoreRead(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() / "bench_store_read.hstore";
  std::filesystem::remove(path);
  store::StoreOptions options;
  options.path = path.string();
  options.sync = false;
  auto st = std::move(store::SegmentStore::Open(options).value());
  const std::uint64_t seg = st->Create("bench").value();
  constexpr std::uint64_t kKeys = 100000;
  const std::string value(256, 'v');
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    st->Append(seg, "k" + std::to_string(i), value);
  }
  st->Seal(seg, /*point_index=*/true);
  st->Commit();
  util::Rng rng(4);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        st->FindNewestFirst(&seg, 1, "k" + std::to_string(rng.Uniform(kKeys)), &out));
  }
  st.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreRead);

// ---------------------------------------------------------------- mq

static void BM_MqAppendPoll(benchmark::State& state) {
  mq::Broker broker;
  broker.CreateTopic("t", 4);
  mq::Producer producer(broker);
  mq::Consumer consumer(broker, "g", "t", {0, 1, 2, 3});
  std::vector<mq::Record> out;
  for (auto _ : state) {
    producer.Send("t", "key", "0123456789abcdef");
    out.clear();
    consumer.Poll(1, out);
  }
}
BENCHMARK(BM_MqAppendPoll);

// ------------------------------------------------- sampling pipeline

static void BM_SamplingIngestEdge(benchmark::State& state) {
  const auto spec = gen::MakeInter(400000);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  SamplingShardCore core(plan, ShardMap{1, 1, 1}, 0, 1, {});
  SamplingShardCore::Outputs out;
  util::Rng rng(3);
  graph::Timestamp ts = 0;
  for (auto _ : state) {
    graph::EdgeUpdate e{1, gen::MakeVertexId(1, rng.Uniform(10000)),
                        gen::MakeVertexId(1, rng.Uniform(10000)), ++ts, 1.0f};
    core.OnGraphUpdate(e, 0, out);
    out.Clear();
  }
}
BENCHMARK(BM_SamplingIngestEdge);

// ----------------------------------------------------- serve assembly

static void BM_ServeKHopAssembly(benchmark::State& state) {
  const auto spec = gen::MakeInter(400000);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  bench::HeliosEmuConfig hc;
  hc.sampling_nodes = 1;
  hc.sampling_threads = 1;
  hc.serving_nodes = 1;
  bench::HeliosDeployment helios(plan, hc);
  gen::UpdateStream stream(spec);
  helios.IngestAll(stream.Drain());
  gen::SeedGenerator seed_gen(0, spec.vertices_per_type[0], 0.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(helios.serving_core(0).Serve(seed_gen.Next()));
  }
}
BENCHMARK(BM_ServeKHopAssembly);

// ------------------------------------------------- ad-hoc comparison

static void BM_AdHocKHop(benchmark::State& state) {
  const auto spec = gen::MakeInter(400000);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  bench::GraphDbEmuConfig dc;
  dc.nodes = 1;
  bench::GraphDbDeployment db(plan, graphdb::TigerGraphProfile(), dc);
  gen::UpdateStream stream(spec);
  db.IngestAll(stream.Drain());
  gen::SeedGenerator seed_gen(0, spec.vertices_per_type[0], 0.0, 5);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.db().ExecuteKHop(seed_gen.Next(), plan, rng));
  }
}
BENCHMARK(BM_AdHocKHop);

// ----------------------------------------------- dissemination path
//
// The sampler→server hot path of §7.2, priced end to end: encode the
// serving-bound traffic, move it, apply it to the sample cache. Two
// variants bracket the PR-2 batching work:
//   PerMessage — the seed path: one ServingMessage encoded/decoded per
//     delta, applied as a full Get→decode→mutate→re-encode→Put round
//     trip in the KV store.
//   Batched — ServingBatch frames: ~64 deltas coalesced per flush into
//     one arena-encoded buffer, applied via KvStore::Merge as in-place
//     binary patches (ServingCore::Apply).
// items_per_second counts logical deltas, so the two are comparable.

namespace {
constexpr std::uint64_t kDissCells = 256;  // small universe → real coalescing
constexpr std::size_t kDissFanout = 25;

SampleDelta RandomDissDelta(util::Rng& rng, graph::Timestamp ts) {
  SampleDelta d;
  d.level = 1;
  d.vertex = gen::MakeVertexId(1, rng.Uniform(kDissCells));
  d.added = {gen::MakeVertexId(1, 10000 + rng.Uniform(1000)), ts, 1.0f};
  if (rng.Uniform(2) == 0) {
    d.evicted = gen::MakeVertexId(1, 10000 + rng.Uniform(1000));
  }
  d.event_ts = ts;
  d.origin_us = static_cast<std::int64_t>(ts);
  return d;
}

// Replica of the seed ServingCore delta apply (pre-KvStore::Merge): read
// the whole cell, decode into an Edge vector, mutate, re-encode, write it
// back.
void SeedApplyDelta(kv::KvStore& store, const SampleDelta& d, std::size_t cap) {
  std::string key(10, '\0');
  key[0] = 's';
  key[1] = static_cast<char>(d.level);
  std::memcpy(key.data() + 2, &d.vertex, sizeof(d.vertex));

  std::vector<graph::Edge> cell;
  std::string value;
  if (store.Get(key, value).ok()) {
    graph::ByteReader r(value);
    r.GetI64();  // event_ts
    const std::uint32_t n = r.GetU32();
    cell.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      graph::Edge e;
      e.dst = r.GetU64();
      e.ts = r.GetI64();
      e.weight = r.GetF32();
      cell.push_back(e);
    }
  }
  if (d.evicted != graph::kInvalidVertex) {
    for (auto it = cell.begin(); it != cell.end(); ++it) {
      if (it->dst == d.evicted) {
        cell.erase(it);
        break;
      }
    }
  }
  cell.push_back(d.added);
  if (cap > 0 && cell.size() > cap) cell.erase(cell.begin());

  graph::ByteWriter w;
  w.PutI64(d.event_ts);
  w.PutU32(static_cast<std::uint32_t>(cell.size()));
  for (const auto& e : cell) {
    w.PutU64(e.dst);
    w.PutI64(e.ts);
    w.PutF32(e.weight);
  }
  store.Put(key, w.Take());
}
}  // namespace

static void BM_DisseminationPerMessage(benchmark::State& state) {
  kv::KvStore store({});
  util::Rng rng(11);
  graph::Timestamp ts = 0;
  ServingMessage decoded;
  for (auto _ : state) {
    const auto msg = ServingMessage::Of(RandomDissDelta(rng, ++ts));
    const std::string bytes = EncodeServingMessage(msg);
    if (!DecodeServingMessage(bytes, decoded)) state.SkipWithError("decode failed");
    SeedApplyDelta(store, decoded.delta(), kDissFanout);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisseminationPerMessage);

static void BM_DisseminationBatched(benchmark::State& state) {
  const auto spec = gen::MakeInter(400000);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  ServingCore core(plan, 0);
  ServingBatchBuilder builder;
  util::Rng rng(11);
  graph::Timestamp ts = 0;
  const std::size_t flush = static_cast<std::size_t>(state.range(0));
  std::uint64_t coalesced = 0;
  std::uint64_t batches = 0;
  ServingMessage msg;
  for (auto _ : state) {
    for (std::size_t i = 0; i < flush; ++i) {
      builder.Add(ServingMessage::Of(RandomDissDelta(rng, ++ts)));
    }
    coalesced += builder.coalesced();
    ++batches;
    const std::string& frame = builder.EncodeToArena();
    ServingBatchReader reader(frame);
    while (reader.Next(msg)) core.Apply(msg);
    if (!reader.ok()) state.SkipWithError("malformed frame");
    builder.Clear();
  }
  state.SetItemsProcessed(state.iterations() * flush);
  state.counters["coalesced_per_batch"] =
      benchmark::Counter(batches > 0 ? static_cast<double>(coalesced) / batches : 0);
  state.counters["batch_occupancy"] = benchmark::Counter(
      batches > 0 ? static_cast<double>(flush) - static_cast<double>(coalesced) / batches : 0);
}
BENCHMARK(BM_DisseminationBatched)->Arg(8)->Arg(64);

// -------------------------------------------------- query read path
//
// The serving-side read path of §6 at fan-out 10×10, priced end to end:
// K-hop cell lookups + feature fetch into a result. Two variants bracket
// the zero-copy batching work:
//   SeedReplica — the pre-arena path: one string key + KvStore::Get +
//     ByteReader decode per cell, features copied one vector at a time
//     into a std::map.
//   ZeroCopy — ServingCore::ServeInto: stack key buffers, one MultiView
//     per hop (one lock per distinct KV shard), cells decoded from the
//     in-lock bytes, features landing in the per-query arena. With the
//     result and scratch reused, the steady state performs zero heap
//     allocations — asserted here via the operator-new counter above.

namespace {
constexpr std::uint32_t kServeFanout = 10;
constexpr std::uint64_t kServeUsers = 64;
constexpr std::uint64_t kServeItems = 512;

QueryPlan ServePlan() {
  graph::GraphSchema schema;
  schema.vertex_type_names = {"User", "Item"};
  schema.edge_type_names = {"Click", "CoPurchase"};
  schema.edge_endpoints = {{0, 1}, {1, 1}};
  schema.feature_dim = 16;
  SamplingQuery q;
  q.seed_type = 0;
  q.hops = {{0, kServeFanout, Strategy::kTopK}, {1, kServeFanout, Strategy::kTopK}};
  return Decompose(q, schema).value();
}

// Deterministic full-fanout cache population, identical for both variants.
struct ServeState {
  std::vector<SampleUpdate> cells;
  std::vector<FeatureUpdate> features;
};

ServeState MakeServeState() {
  ServeState state;
  util::Rng rng(13);
  auto random_items = [&] {
    std::vector<graph::VertexId> items;
    for (std::uint32_t i = 0; i < kServeFanout; ++i) {
      items.push_back(gen::MakeVertexId(1, rng.Uniform(kServeItems)));
    }
    return items;
  };
  auto cell = [](std::uint32_t level, graph::VertexId v, std::vector<graph::VertexId> dsts) {
    SampleUpdate su;
    su.level = level;
    su.vertex = v;
    su.event_ts = 1;
    for (auto d : dsts) su.samples.push_back({d, 1, 1.0f});
    return su;
  };
  auto feature = [&](graph::VertexId v) {
    FeatureUpdate fu;
    fu.vertex = v;
    fu.feature.resize(16);
    for (auto& x : fu.feature) x = static_cast<float>(rng.UniformDouble());
    return fu;
  };
  for (std::uint64_t u = 0; u < kServeUsers; ++u) {
    state.cells.push_back(cell(1, gen::MakeVertexId(0, u), random_items()));
    state.features.push_back(feature(gen::MakeVertexId(0, u)));
  }
  for (std::uint64_t i = 0; i < kServeItems; ++i) {
    state.cells.push_back(cell(2, gen::MakeVertexId(1, i), random_items()));
    state.features.push_back(feature(gen::MakeVertexId(1, i)));
  }
  return state;
}

// ---- seed-path replica (string keys, Get + decode + per-vertex copies)

std::string SeedSampleKey(std::uint32_t level, graph::VertexId v) {
  std::string key(10, '\0');
  key[0] = 's';
  key[1] = static_cast<char>(level);
  std::memcpy(key.data() + 2, &v, sizeof(v));
  return key;
}

std::string SeedFeatureKey(graph::VertexId v) {
  std::string key(9, '\0');
  key[0] = 'f';
  std::memcpy(key.data() + 1, &v, sizeof(v));
  return key;
}

void PopulateSeedStore(kv::KvStore& store, const ServeState& state) {
  for (const auto& su : state.cells) {
    graph::ByteWriter w;
    w.PutI64(su.event_ts);
    w.PutU32(static_cast<std::uint32_t>(su.samples.size()));
    for (const auto& e : su.samples) {
      w.PutU64(e.dst);
      w.PutI64(e.ts);
      w.PutF32(e.weight);
    }
    store.Put(SeedSampleKey(su.level, su.vertex), w.Take());
  }
  for (const auto& fu : state.features) {
    graph::ByteWriter w;
    w.PutFloats(fu.feature);
    store.Put(SeedFeatureKey(fu.vertex), w.Take());
  }
}

struct SeedSubgraph {
  graph::VertexId seed = graph::kInvalidVertex;
  std::vector<std::vector<SampledSubgraph::Node>> layers;
  std::map<graph::VertexId, graph::Feature> features;
  std::uint64_t missing_cells = 0;
  std::uint64_t missing_features = 0;
};

SeedSubgraph SeedServe(const kv::KvStore& store, const QueryPlan& plan, graph::VertexId seed) {
  SeedSubgraph result;
  result.seed = seed;
  result.layers.resize(plan.num_hops() + 1);
  result.layers[0].push_back({seed, 0});

  std::vector<graph::Edge> cell;
  std::string value;
  for (std::size_t k = 0; k < plan.num_hops(); ++k) {
    const std::uint32_t level = plan.one_hop[k].hop;
    auto& frontier = result.layers[k];
    auto& next = result.layers[k + 1];
    for (std::uint32_t parent = 0; parent < frontier.size(); ++parent) {
      if (!store.Get(SeedSampleKey(level, frontier[parent].vertex), value).ok()) {
        result.missing_cells++;
        continue;
      }
      cell.clear();
      graph::ByteReader r(value);
      r.GetI64();
      const std::uint32_t n = r.GetU32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        graph::Edge e;
        e.dst = r.GetU64();
        e.ts = r.GetI64();
        e.weight = r.GetF32();
        if (r.ok()) cell.push_back(e);
      }
      for (const auto& edge : cell) next.push_back({edge.dst, parent});
    }
  }
  for (const auto& layer : result.layers) {
    for (const auto& node : layer) {
      if (result.features.count(node.vertex)) continue;
      if (store.Get(SeedFeatureKey(node.vertex), value).ok()) {
        graph::ByteReader r(value);
        result.features.emplace(node.vertex, r.GetFloats());
      } else {
        result.missing_features++;
      }
    }
  }
  return result;
}
}  // namespace

static void BM_ServePathSeedReplica(benchmark::State& state) {
  const auto plan = ServePlan();
  kv::KvStore store({});
  PopulateSeedStore(store, MakeServeState());
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto result = SeedServe(store, plan, gen::MakeVertexId(0, i++ % kServeUsers));
    benchmark::DoNotOptimize(result.features.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServePathSeedReplica);

namespace {
// Shared body for every fused-serve-path variant: populate the cache in
// `format`, warm up, then measure steady-state ServeInto asserting the
// zero-allocation contract (now inclusive of the 32-byte aligned arenas —
// the over-aligned operator new replacements above count too).
void RunServePathFused(benchmark::State& state, FeatureFormat format) {
  const auto plan = ServePlan();
  ServingCore::Options options;
  options.feature_format = format;
  ServingCore core(plan, 0, options);
  const auto data = MakeServeState();
  for (const auto& su : data.cells) core.Apply(ServingMessage::Of(su));
  for (const auto& fu : data.features) core.Apply(ServingMessage::Of(fu));

  SampledSubgraph out;
  ServeScratch scratch;
  // Warm-up: one pass over every seed grows all reused buffers to their
  // steady-state capacity.
  for (std::uint64_t u = 0; u < kServeUsers; ++u) {
    core.ServeInto(gen::MakeVertexId(0, u), out, scratch);
  }

  std::uint64_t allocs = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count;
    core.ServeInto(gen::MakeVertexId(0, i++ % kServeUsers), out, scratch);
    allocs += g_alloc_count - before;
    benchmark::DoNotOptimize(out.features.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_query"] = benchmark::Counter(
      state.iterations() > 0 ? static_cast<double>(allocs) / static_cast<double>(state.iterations())
                             : 0);
  if (allocs != 0) {
    state.SkipWithError("steady-state ServeInto allocated on the heap");
  }
  state.SetLabel(std::string("features=") + FeatureFormatName(format) +
                 " simd=" + util::simd::SimdLevelName(util::simd::ActiveSimdLevel()));
}
}  // namespace

static void BM_ServePathZeroCopy(benchmark::State& state) {
  RunServePathFused(state, FeatureFormat::kFp32);
}
BENCHMARK(BM_ServePathZeroCopy);

// Same path with the dispatcher pinned to the scalar kernels — the delta
// vs BM_ServePathZeroCopy is what vectorization buys end to end.
static void BM_ServePathZeroCopyScalar(benchmark::State& state) {
  util::simd::ForceSimdLevel(util::simd::SimdLevel::kScalar);
  RunServePathFused(state, FeatureFormat::kFp32);
  util::simd::ResetSimdLevel();
}
BENCHMARK(BM_ServePathZeroCopyScalar);

// Quantized feature storage: same query stream, cache holds fp16 / int8
// values, gather dequantizes into the fp32 arena. Still 0 allocs/query.
static void BM_ServePathFusedFp16(benchmark::State& state) {
  RunServePathFused(state, FeatureFormat::kFp16);
}
BENCHMARK(BM_ServePathFusedFp16);

static void BM_ServePathFusedInt8(benchmark::State& state) {
  RunServePathFused(state, FeatureFormat::kInt8);
}
BENCHMARK(BM_ServePathFusedInt8);

// Computation-reuse tier (docs/PERF.md "Computation reuse & admission"):
// the same 10×10 serve shape answered through the aggregate cache +
// EmbedSeedCached. Steady state is all-hits (the cache holds every item's
// hop-1 aggregate after warm-up), so each query reads one cell, replays 10
// cached aggregate rows, gathers 11 features, and runs the 2-layer SAGE —
// no hop-2 expansion, no grandchild feature gather. Asserts the 0 allocs/
// query contract and the ≥80% hit-rate regime the speedup is quoted at.
static void BM_ServePathCached(benchmark::State& state) {
  const auto plan = ServePlan();
  ServingCore::Options options;
  options.aggregate_cache_entries = 4096;  // holds all kServeItems aggregates
  ServingCore core(plan, 0, options);
  const auto data = MakeServeState();
  for (const auto& su : data.cells) core.Apply(ServingMessage::Of(su));
  for (const auto& fu : data.features) core.Apply(ServingMessage::Of(fu));

  gnn::SageConfig config;
  config.input_dim = 16;
  config.hidden_dim = 16;
  config.output_dim = 16;
  const gnn::GraphSageEncoder encoder(config);
  gnn::CachedEmbedScratch scratch;
  std::vector<float> out;
  for (std::uint64_t u = 0; u < kServeUsers; ++u) {
    if (!encoder.EmbedSeedCached(core, gen::MakeVertexId(0, u), scratch, out)) {
      state.SkipWithError("cached serve path rejected the bench plan");
      return;
    }
  }

  std::uint64_t allocs = 0, hits = 0, lookups = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count;
    encoder.EmbedSeedCached(core, gen::MakeVertexId(0, i++ % kServeUsers), scratch, out);
    allocs += g_alloc_count - before;
    hits += scratch.result.cache_hits;
    lookups += scratch.result.cache_hits + scratch.result.cache_misses +
               scratch.result.stale_recomputes;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  const double hit_rate =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0;
  state.counters["hit_rate"] = benchmark::Counter(hit_rate);
  state.counters["allocs_per_query"] = benchmark::Counter(
      state.iterations() > 0 ? static_cast<double>(allocs) / static_cast<double>(state.iterations())
                             : 0);
  if (allocs != 0) state.SkipWithError("steady-state cached serve allocated on the heap");
  if (hit_rate < 0.8) state.SkipWithError("cache hit rate fell below the 80% quoting regime");
  state.SetLabel(std::string("simd=") + util::simd::SimdLevelName(util::simd::ActiveSimdLevel()));
}
BENCHMARK(BM_ServePathCached);

// ------------------------------------------- sample/gather kernels
//
// The two kernel families the fused serve path is built from, isolated:
//   CellDecode — split `n` packed 20-byte cell records (u64 dst | i64 ts |
//     f32 w) into SoA arrays with the strided-gather kernels.
//   Gather — decode one cached feature value (fp32 memcpy / fp16 / int8
//     dequant) into the fp32 arena row the GNN reads.
// Scalar and AVX2 variants run the same dispatched entry points under
// ForceSimdLevel, so the comparison includes dispatch overhead exactly as
// the serve path pays it.

namespace {
constexpr std::size_t kDecodeRecords = 25;  // paper fan-out

std::string MakePackedCell(std::size_t n) {
  graph::ByteWriter w;
  w.PutI64(1);
  w.PutU32(static_cast<std::uint32_t>(n));
  util::Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    w.PutU64(rng.Next());
    w.PutI64(static_cast<std::int64_t>(i));
    w.PutF32(static_cast<float>(rng.UniformDouble()));
  }
  return w.Take();
}

void RunCellDecode(benchmark::State& state, util::simd::SimdLevel level) {
  if (level == util::simd::SimdLevel::kAvx2 &&
      !(util::simd::kHasAvx2Kernels && util::simd::CpuHasAvx2())) {
    state.SkipWithError("AVX2 kernels unavailable on this host");
    return;
  }
  util::simd::ForceSimdLevel(level);
  const std::string cell = MakePackedCell(kDecodeRecords);
  const char* records = cell.data() + 12;  // skip [event_ts][n] header
  util::AlignedVector<std::uint64_t> dst(kDecodeRecords);
  util::AlignedVector<float> weight(kDecodeRecords);
  for (auto _ : state) {
    util::simd::GatherStridedU64(records, 20, kDecodeRecords, dst.data());
    util::simd::GatherStridedF32(records + 16, 20, kDecodeRecords, weight.data());
    benchmark::DoNotOptimize(dst.data());
    benchmark::DoNotOptimize(weight.data());
  }
  util::simd::ResetSimdLevel();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kDecodeRecords * 20);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kDecodeRecords);
}
}  // namespace

static void BM_CellDecodeScalar(benchmark::State& state) {
  RunCellDecode(state, util::simd::SimdLevel::kScalar);
}
BENCHMARK(BM_CellDecodeScalar);

static void BM_CellDecodeSimd(benchmark::State& state) {
  RunCellDecode(state, util::simd::SimdLevel::kAvx2);
}
BENCHMARK(BM_CellDecodeSimd);

namespace {
void RunGather(benchmark::State& state, FeatureFormat format) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  graph::Feature f(dim);
  util::Rng rng(19);
  for (auto& x : f) x = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  const std::string value = EncodeFeatureValue(f, format);
  const std::string_view payload(value.data() + 4, value.size() - 4);
  util::AlignedVector<float> out(dim);
  for (auto _ : state) {
    switch (format) {
      case FeatureFormat::kFp32:
        std::memcpy(out.data(), payload.data(), dim * sizeof(float));
        break;
      case FeatureFormat::kFp16:
        util::simd::DequantFp16(reinterpret_cast<const std::uint16_t*>(payload.data()), dim,
                                out.data());
        break;
      case FeatureFormat::kInt8: {
        float scale;
        std::memcpy(&scale, payload.data(), sizeof(scale));
        util::simd::DequantInt8(reinterpret_cast<const std::int8_t*>(payload.data() + 4), dim,
                                scale, out.data());
        break;
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * dim);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
}  // namespace

static void BM_GatherFp32(benchmark::State& state) { RunGather(state, FeatureFormat::kFp32); }
BENCHMARK(BM_GatherFp32)->Arg(16)->Arg(256);

static void BM_GatherFp16(benchmark::State& state) { RunGather(state, FeatureFormat::kFp16); }
BENCHMARK(BM_GatherFp16)->Arg(16)->Arg(256);

static void BM_GatherInt8(benchmark::State& state) { RunGather(state, FeatureFormat::kInt8); }
BENCHMARK(BM_GatherInt8)->Arg(16)->Arg(256);

// ------------------------------------------------------------ codecs

static void BM_ServingMessageCodec(benchmark::State& state) {
  SampleUpdate su;
  su.level = 1;
  su.vertex = 42;
  for (int i = 0; i < 25; ++i) su.samples.push_back({static_cast<graph::VertexId>(i), i, 1.f});
  const auto msg = ServingMessage::Of(su);
  ServingMessage out;
  for (auto _ : state) {
    const std::string bytes = EncodeServingMessage(msg);
    benchmark::DoNotOptimize(DecodeServingMessage(bytes, out));
  }
}
BENCHMARK(BM_ServingMessageCodec);

// --------------------------------------------------------------- gnn

// The blocked fp32 GEMM behind GraphSageEncoder::Apply: one node's
// h_out = [self | mean] × [W_self ; W_neigh] + bias (+ReLU), the inner
// kernel every embed runs once per node per layer. Args = {in, width}.
namespace {
void RunSageApply(benchmark::State& state, util::simd::SimdLevel level) {
  if (level == util::simd::SimdLevel::kAvx2 &&
      !(util::simd::kHasAvx2Kernels && util::simd::CpuHasAvx2())) {
    state.SkipWithError("AVX2 kernels unavailable on this host");
    return;
  }
  util::simd::ForceSimdLevel(level);
  const std::size_t in = static_cast<std::size_t>(state.range(0));
  const std::size_t width = static_cast<std::size_t>(state.range(1));
  util::Rng rng(23);
  util::AlignedVector<float> a(in), b(in), x(in * width), y(in * width), bias(width), out(width);
  for (auto& v : a) v = static_cast<float>(rng.UniformDouble());
  for (auto& v : b) v = static_cast<float>(rng.UniformDouble());
  for (auto& v : x) v = static_cast<float>(rng.UniformDouble() - 0.5);
  for (auto& v : y) v = static_cast<float>(rng.UniformDouble() - 0.5);
  for (auto& v : bias) v = static_cast<float>(rng.UniformDouble() - 0.5);
  for (auto _ : state) {
    util::simd::SageApply(a.data(), b.data(), x.data(), y.data(), in, width, width, bias.data(),
                          true, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  util::simd::ResetSimdLevel();
  // 4 flops per (k, j): two mul + two add across both weight matrices.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * in * width * 4);
}
}  // namespace

static void BM_GraphSageApplyScalar(benchmark::State& state) {
  RunSageApply(state, util::simd::SimdLevel::kScalar);
}
BENCHMARK(BM_GraphSageApplyScalar)->Args({16, 64})->Args({64, 64});

static void BM_GraphSageApply(benchmark::State& state) {
  RunSageApply(state, util::simd::SimdLevel::kAvx2);
}
BENCHMARK(BM_GraphSageApply)->Args({16, 64})->Args({64, 64});

static void BM_GraphSageInfer(benchmark::State& state) {
  gnn::SageConfig config;
  config.input_dim = 10;
  config.hidden_dim = 64;
  config.output_dim = 64;
  gnn::ModelServer model(config);
  SampledSubgraph sample;
  sample.seed = 1;
  sample.layers.resize(3);
  sample.layers[0].push_back({1, 0});
  for (std::uint32_t i = 0; i < 25; ++i) {
    sample.layers[1].push_back({100 + i, 0});
    for (std::uint32_t j = 0; j < 10; ++j) {
      sample.layers[2].push_back({1000 + i * 10 + j, i});
    }
  }
  util::Rng rng(9);
  for (const auto& layer : sample.layers) {
    for (const auto& node : layer) {
      graph::Feature f(10);
      for (auto& v : f) v = static_cast<float>(rng.UniformDouble());
      sample.features.Set(node.vertex, f);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Infer(sample));
  }
}
BENCHMARK(BM_GraphSageInfer);

BENCHMARK_MAIN();
