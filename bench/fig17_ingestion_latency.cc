// Figure 17: end-to-end ingestion latency (graph update -> visible in the
// serving cache) across all four datasets, at an offered rate of ~70% of
// each deployment's measured capacity, plus the §7.4 read-after-write
// probe: the fraction of updates relevant to a seed's 2-hop subgraph that
// an immediate inference request would miss due to ingestion latency.
//
// Paper shape: P99 ingestion latency around/below ~1.2s at millions of
// updates/s; missed-update fractions of 0.03% / 0.02% / 1.90% / 0.01%.
//
// Usage: fig17_ingestion_latency [scale=2000] [--trace-out=out.json]
//        [--metrics-out=-]
//   --trace-out=<path>    write a Chrome-trace/Perfetto timeline of the
//                         first dataset's paced run (with causal per-update
//                         flow events stitching sampler -> serving lanes)
//   --metrics-out=<path>  dump the final deployment's metrics snapshot
//                         ("-" = stdout, *.json = JSON)
//   (legacy spellings trace= / metrics= stay accepted)
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  obs::TraceBuffer trace_buffer;
  bool trace_armed = bench::TraceRequested(config);
  obs::MetricsRegistry::Snapshot last_snapshot;

  bench::PrintHeader("Fig 17: ingestion latency at ~70% capacity + read-after-write misses",
                     "dataset  rate_mps  p50_ms   p99_ms   missed_updates");
  for (const auto& spec : gen::AllDatasets(scale)) {
    const auto plan = bench::PaperQuery(spec, Strategy::kRandom, 2);
    gen::UpdateStream stream(spec);
    const auto updates = stream.Drain();

    // Capacity probe, then a paced run at 70%.
    bench::HeliosEmuConfig hc;
    bench::HeliosDeployment probe(plan, hc);
    const double capacity = probe.EmulateIngestion(updates, 0).throughput_mps;
    bench::HeliosDeployment paced(plan, hc);
    const double rate = capacity * 0.7;
    // The trace covers the first dataset only (one paced run is already a
    // full timeline; appending all four would drown the viewer).
    const auto report =
        paced.EmulateIngestion(updates, rate, trace_armed ? &trace_buffer : nullptr);
    trace_armed = false;
    last_snapshot = paced.registry().TakeSnapshot();

    // Read-after-write probe: for sampled seeds, what share of the updates
    // relevant to their 2-hop subgraph falls inside the P99-latency window
    // just before an immediately-issued request (and is thus invisible)?
    // Relevant srcs = the seed plus its sampled 1-hop frontier.
    std::unordered_map<graph::VertexId, std::vector<std::uint64_t>> src_positions;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (const auto* e = std::get_if<graph::EdgeUpdate>(&updates[i])) {
        src_positions[e->src].push_back(i);
      }
    }
    const double p99_us = static_cast<double>(report.latency_us.P99());
    const double window_updates = p99_us * rate;  // rate is updates/us
    const auto [seed_type, population] = bench::PaperSeeds(spec);
    gen::SeedGenerator seed_gen(seed_type, population, 0.0, 31);
    std::uint64_t relevant_total = 0, relevant_missed = 0;
    for (int s = 0; s < 500; ++s) {
      const auto seed = seed_gen.Next();
      const auto result = paced.serving_core(paced.map().ServingWorkerOf(seed)).Serve(seed);
      std::vector<graph::VertexId> srcs{seed};
      for (const auto& n : result.layers.size() > 1 ? result.layers[1]
                                                    : std::vector<SampledSubgraph::Node>{}) {
        srcs.push_back(n.vertex);
      }
      for (const auto src : srcs) {
        auto it = src_positions.find(src);
        if (it == src_positions.end()) continue;
        relevant_total += it->second.size();
        const double cutoff = static_cast<double>(updates.size()) - window_updates;
        for (auto pos_it = it->second.rbegin();
             pos_it != it->second.rend() && static_cast<double>(*pos_it) >= cutoff; ++pos_it) {
          relevant_missed++;
        }
      }
    }
    const double missed_pct = relevant_total > 0
                                  ? 100.0 * static_cast<double>(relevant_missed) /
                                        static_cast<double>(relevant_total)
                                  : 0.0;
    std::printf("%-8s %-9.2f %-8.1f %-8.1f %.2f%%\n", spec.name.c_str(), rate,
                static_cast<double>(report.latency_us.P50()) / 1000.0,
                static_cast<double>(report.latency_us.P99()) / 1000.0, missed_pct);
    report.PrintStageBreakdown();
  }
  std::printf("\npaper: P99 ingestion latency as low as 1.2s under millions of updates/s; "
              "missed fractions 0.03%%/0.02%%/1.90%%/0.01%%\n");
  bench::DumpObservability(config, &last_snapshot, &trace_buffer);
  return 0;
}
