// Shared sweep used by fig09 (throughput) and fig10 (latency): Helios vs
// TigerGraph/NebulaGraph stand-ins on the billion-scale-benchmark stand-ins
// (BI, INTER, FIN), TopK and Random queries, rising request concurrency.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace helios::bench {

struct SweepPoint {
  std::string system;
  std::string dataset;
  std::string strategy;
  std::uint32_t concurrency;
  ServeReport report;
};

// Runs the full comparison; `row_cb` fires per completed point so benches
// can stream output. Helios uses 4 sampling + 6 serving nodes, baselines
// all 10 nodes (§7.2).
inline void RunServingSweep(std::uint64_t scale, std::uint64_t requests,
                            const std::vector<std::uint32_t>& concurrencies,
                            const std::function<void(const SweepPoint&)>& row_cb) {
  for (const auto& spec : {gen::MakeBI(scale), gen::MakeInter(scale), gen::MakeFin(scale)}) {
    gen::UpdateStream stream(spec);
    const auto updates = stream.Drain();
    const auto [seed_type, population] = PaperSeeds(spec);
    gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
    const auto seeds = seed_gen.Batch(10000);

    for (const Strategy strategy : {Strategy::kTopK, Strategy::kRandom}) {
      const auto plan = PaperQuery(spec, strategy, 2);

      HeliosEmuConfig helios_config;  // 4 sampling + 6 serving
      HeliosDeployment helios(plan, helios_config);
      helios.IngestAll(updates);

      GraphDbEmuConfig db_config;  // 10 nodes
      GraphDbDeployment tiger(plan, graphdb::TigerGraphProfile(), db_config);
      tiger.IngestAll(updates);
      GraphDbDeployment nebula(plan, graphdb::NebulaGraphProfile(), db_config);
      nebula.IngestAll(updates);

      for (const std::uint32_t conc : concurrencies) {
        // Keep the closed loop meaningful: several rounds per client.
        const std::uint64_t n = std::max<std::uint64_t>(requests, conc * 4ull);
        row_cb({"Helios", spec.name, StrategyName(strategy), conc,
                helios.EmulateServing(seeds, conc, n)});
        row_cb({"TigerGraph", spec.name, StrategyName(strategy), conc,
                tiger.EmulateServing(seeds, conc, n)});
        row_cb({"NebulaGraph", spec.name, StrategyName(strategy), conc,
                nebula.EmulateServing(seeds, conc, n)});
      }
    }
  }
}

}  // namespace helios::bench
