// Shared benchmark harness: deploys Helios and the MiniGraphDB baselines on
// the discrete-event cluster emulator and measures serving / ingestion
// behaviour under the paper's workloads.
//
// Philosophy (see DESIGN.md §1): all data-dependent compute is *executed*
// — worker handlers run the real SamplingShardCore / ServingCore /
// MiniGraphDB code and their measured wall time becomes virtual service
// time on the emulated nodes. The emulator contributes only parallelism
// (k-server CPU resources per node) and the wire (latency + bandwidth).
// That is how a single-core workspace reproduces 10-node-cluster curves
// whose *shape* is meaningful.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "elastic/migrator.h"
#include "elastic/rebalancer.h"
#include "elastic/shard_map.h"
#include "gen/datasets.h"
#include "gen/update_stream.h"
#include "gen/workload.h"
#include "gnn/graphsage.h"
#include "graphdb/minigraphdb.h"
#include "helios/admission.h"
#include "helios/query.h"
#include "helios/sampling_core.h"
#include "helios/serving_core.h"
#include "helios/shard_map.h"
#include "obs/freshness.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "sim/sim.h"
#include "util/config.h"
#include "util/histogram.h"

namespace helios::bench {

// ---------------------------------------------------------------- reports

struct ServeReport {
  double qps = 0;                 // completed requests / virtual second
  util::Histogram latency_us;     // per-request end-to-end latency
  // Measured wall time of the cache read path alone (ServeInto /
  // MiniGraphDB sampling), i.e. the real-CPU cost that becomes virtual
  // service time — excludes emulated queueing and the wire.
  util::Histogram read_path_ns;
  std::uint64_t requests = 0;
  std::uint64_t missing_cells = 0;
  std::uint64_t missing_features = 0;
};

struct IngestReport {
  double throughput_mps = 0;      // million updates / virtual second
  util::Histogram latency_us;     // update publish -> applied at serving
  sim::SimTime makespan_us = 0;
  std::uint64_t updates = 0;
  // Per-node CPU busy time (utilization diagnostics).
  std::vector<sim::SimTime> sampling_busy_us;
  std::vector<sim::SimTime> serving_busy_us;
  // Per-stage breakdown of the ingestion pipeline (virtual µs), recorded by
  // the same StageTracer the threaded runtime uses: queue wait, shard core
  // processing, sub-delta cascade, serving-cache apply.
  util::Histogram stage_ingest_us;
  util::Histogram stage_sample_us;
  util::Histogram stage_cascade_us;
  util::Histogram stage_cache_apply_us;
  // Dissemination-path batching stats ("dissemination.*" metrics): frames
  // shipped sampler->server, messages inside them, deltas folded away by
  // same-cell coalescing, and framed bytes on the wire.
  std::uint64_t diss_batches = 0;
  std::uint64_t diss_messages = 0;
  std::uint64_t diss_coalesced = 0;
  std::uint64_t diss_bytes_wire = 0;
  util::Histogram batch_occupancy;  // messages per batch

  // Fault-mode (fig20) results, filled when EmulateIngestion ran with a
  // DesFaultSpec: virtual-time crash/recovery markers plus exactly-once
  // accounting (docs/FAULT_TOLERANCE.md).
  sim::SimTime fault_killed_at_us = 0;
  sim::SimTime fault_detected_at_us = 0;
  sim::SimTime fault_recovered_at_us = 0;  // victim re-admitted (epoch bumped)
  std::uint32_t fault_epoch = 0;           // epoch granted at re-admission
  std::uint64_t fault_updates_replayed = 0;
  std::uint64_t fault_deltas_fenced = 0;   // serving-side re-emissions dropped
  std::uint64_t fault_ctrl_fenced = 0;     // peer-shard re-emissions dropped
  // Applied-at-serving throughput timeline (bucketed on virtual time): the
  // dip-and-recovery curve of fig20. Empty outside fault mode.
  sim::SimTime timeline_bucket_us = 0;
  std::vector<std::uint64_t> applied_timeline;

  // Prints the "stage  count  mean  p50/p99/p999" breakdown table plus the
  // dissemination batching summary line.
  void PrintStageBreakdown() const;
};

// Crash/recovery scenario for the DES runtime: kill one sampling node at a
// virtual instant, detect via heartbeat supervision on virtual time, restore
// from the (virtual-time) checkpoint and replay the per-shard durable logs.
// Single-fault experiments only (monitoring stops after the recovery).
struct DesFaultSpec {
  std::uint32_t victim_node = 0;           // sampling node to crash
  sim::SimTime kill_at_us = 0;             // crash instant
  sim::SimTime checkpoint_at_us = 0;       // checkpoint instant (0 = none;
                                           // entry state is always snapshotted
                                           // so recovery never starts cold)
  sim::SimTime detect_timeout_us = 50'000; // heartbeat timeout
  sim::SimTime timeline_bucket_us = 10'000;  // applied-throughput bucket width
};

// ------------------------------------------------------------ deployments

struct HeliosEmuConfig {
  std::uint32_t sampling_nodes = 4;
  std::uint32_t sampling_threads = 16;  // per node (S)
  std::uint32_t serving_nodes = 6;
  std::uint32_t serving_threads = 16;   // per node
  sim::SimTime net_latency_us = 120;
  double gbps = 10.0;
  std::uint64_t seed = 42;
  kv::KvOptions serving_kv;             // default memory-only
  // Storage format for cached features at the serving workers (Fig 16
  // quantization rows re-run the cache sweep with fp16 / int8).
  FeatureFormat feature_format = FeatureFormat::kFp32;
  // Computation-reuse tier (docs/PERF.md "Computation reuse & admission"):
  // per-worker aggregate-cache capacity (0 = off) and staleness bound
  // (-1 = no age check, 0 = always recompute).
  std::size_t aggregate_cache_entries = 0;
  std::int64_t aggregate_staleness_us = -1;
};

// Optional observability sinks for the emulated flows (all owned by the
// caller; null members are simply not fed). Clocked on DES virtual time.
struct IngestObs {
  // Windowed per-serving-worker telemetry: staleness (update origin ->
  // cache apply) lands in the destination worker's lane.
  obs::TelemetryHub* telemetry = nullptr;
  // Update -> visibility freshness, lanes keyed by source sampling shard.
  obs::FreshnessTracker* freshness = nullptr;
  // Periodic TelemetryHub::SnapshotJson captures every `interval` virtual
  // µs into *snapshots (0 or null disables). The tick self-terminates once
  // applies quiesce so it cannot keep the DES event loop alive.
  std::int64_t telemetry_interval_us = 0;
  std::vector<std::string>* snapshots = nullptr;
};

struct ServeObs {
  obs::TraceBuffer* trace = nullptr;  // per-query serve spans (pid = worker)
  // Per-query latency/bytes (+ SLO when deadline_us > 0) into the serving
  // worker's lane; first-serve staleness of background updates feeds the
  // same lane's staleness histogram.
  obs::TelemetryHub* telemetry = nullptr;
  // First-serve freshness (armed by background applies, recorded at query
  // reads), lanes keyed by the read vertex's owner sampling shard.
  obs::FreshnessTracker* freshness = nullptr;
  std::int64_t telemetry_interval_us = 0;
  std::vector<std::string>* snapshots = nullptr;
  std::uint64_t deadline_us = 0;  // per-query SLO deadline (0 = no SLO)
};

// A Helios deployment whose state lives in-process; the emulator replays
// serving and ingestion flows against it.
class HeliosDeployment {
 public:
  HeliosDeployment(QueryPlan plan, HeliosEmuConfig config);

  const ShardMap& map() const { return map_; }
  const HeliosEmuConfig& config() const { return config_; }

  // Fast path (no timing): pushes the whole stream through the sampling
  // pipeline and applies everything at the serving caches. Used to build
  // state before serving-phase emulation.
  void IngestAll(const std::vector<graph::GraphUpdate>& updates);

  // Emulated ingestion of `updates`. offered_rate_mps == 0 means
  // saturation (everything offered at t=0; throughput = capacity). When
  // `trace` is set, every pipeline stage also lands in the Chrome-trace
  // buffer on virtual time. When `fault` is set, the run additionally
  // crashes fault->victim_node at the configured virtual instant, detects
  // it by heartbeat supervision, restores from the (virtual-time)
  // checkpoint, replays the per-shard durable logs with epoch/seq fencing
  // at the receivers, and fills the fault_* / timeline report fields.
  // `obs` adds windowed telemetry / freshness tracking on virtual time.
  // Tracing additionally mints a causal TraceContext per update and emits
  // flow events stitching sampler-side emission to serving-side apply.
  IngestReport EmulateIngestion(const std::vector<graph::GraphUpdate>& updates,
                                double offered_rate_mps,
                                obs::TraceBuffer* trace = nullptr,
                                const DesFaultSpec* fault = nullptr,
                                const IngestObs* obs = nullptr);

  // Closed-loop serving: `concurrency` clients each keep one request in
  // flight until `total_requests` complete. If `model` is set, responses
  // additionally traverse a model-serving node (Fig 19). If
  // `background_rate_mps` > 0, the serving nodes concurrently apply
  // sample-queue updates at that aggregate rate (Fig 12: serving stability
  // under ingestion load) drawn round-robin from `background`.
  ServeReport EmulateServing(const std::vector<graph::VertexId>& seeds,
                             std::uint32_t concurrency, std::uint64_t total_requests,
                             gnn::ModelServer* model = nullptr,
                             std::uint32_t model_nodes = 4,
                             const std::vector<ServingMessage>* background = nullptr,
                             double background_rate_mps = 0,
                             const ServeObs* obs = nullptr);

  // Open-loop serving through the SLO-aware admission front door (the
  // fig19 overload sweep): queries arrive Poisson at `rate_qps`, each with
  // deadline now + deadline_us; per-worker AdmissionQueues batch by
  // deadline slack and shed under overload (serving.admission.*). When
  // `encoder` is set and the deployment was built with
  // aggregate_cache_entries > 0, queries serve through the computation-
  // reuse tier (GraphSageEncoder::EmbedSeedCached); otherwise the plain
  // ServeInto path. Virtual time throughout; deterministic for a fixed
  // (seeds, rate, seed) tuple.
  struct AdmissionServeReport {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed_full = 0;
    std::uint64_t shed_overload = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t stale_recomputes = 0;
    util::Histogram latency_us;     // completed queries, arrival -> reply
    double qps = 0;                 // completed / virtual second
    double slo_hit_rate = 1.0;      // completed within their deadline
    sim::SimTime makespan_us = 0;
  };
  AdmissionServeReport EmulateAdmissionServing(const std::vector<graph::VertexId>& seeds,
                                               double rate_qps, std::uint64_t total_requests,
                                               std::int64_t deadline_us,
                                               AdmissionQueue::Options admission,
                                               gnn::GraphSageEncoder* encoder = nullptr,
                                               obs::TelemetryHub* telemetry = nullptr);

  // Elastic autoscaling scenario (fig21, docs/ELASTICITY.md): open-loop
  // queries arrive on the diurnal curve, route through a versioned
  // elastic::ShardMap placement over up to max_nodes emulated serving
  // nodes, and a control loop (TelemetryHub::WindowLoads -> Rebalancer ->
  // ShardMigrator) migrates shards, adds nodes, and drain-then-retires
  // them as the offered load breathes. Every served response is executed
  // for real (ServeInto) and folded into `served_hash`, so a run with
  // migrations_enabled == false over the same spec is a golden run the
  // elastic run must match byte-for-byte. Migration checkpoints really
  // round-trip SamplingShardCore::Serialize/Deserialize and pay the wire.
  struct ElasticSpec {
    gen::DiurnalSpec diurnal;                  // arrival curve (must be Enabled)
    sim::SimTime duration_us = 20'000'000;     // virtual run length
    double node_capacity_qps = 2'000;          // autoscaler calibration
    // The policy plans against this fraction of true capacity, so steady
    // state keeps real queueing headroom and ramp backlogs drain.
    double policy_headroom = 0.75;
    std::uint32_t initial_nodes = 2;
    std::uint32_t min_nodes = 1;
    std::uint32_t max_nodes = 8;               // node universe (SimCluster size)
    bool migrations_enabled = true;            // false = frozen-placement golden run
    std::int64_t decision_interval_us = 500'000;
    std::int64_t shard_cooldown_us = 2'000'000;
    std::uint32_t max_concurrent_migrations = 2;
    sim::SimTime cutover_pause_us = 2'000;     // dest-side flip stall per migration
    sim::SimTime timeline_bucket_us = 1'000'000;
    std::uint64_t slo_deadline_us = 0;         // 0 = no SLO scoring
    std::uint64_t seed_pick_seed = 1234;       // seed-vertex draw stream
  };
  struct ElasticReport {
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t migrations = 0;
    std::uint32_t nodes_added = 0;
    std::uint32_t nodes_retired = 0;
    std::uint32_t peak_nodes = 0;
    std::uint32_t final_nodes = 0;
    std::uint64_t served_hash = 0;       // FNV-1a over every response payload
    std::uint64_t final_map_version = 1;
    std::uint64_t ckpt_bytes_moved = 0;
    util::Histogram latency_us;
    sim::SimTime timeline_bucket_us = 0;
    struct Bucket {
      sim::SimTime t_us = 0;
      double offered_qps = 0;
      std::uint32_t active_nodes = 0;
      double load_spread = 0;   // max per-node completions / mean (1.0 = even)
      std::uint64_t p99_us = 0;
      std::uint32_t migrations = 0;
    };
    std::vector<Bucket> timeline;
    // ASCII "node count tracks the diurnal curve" table.
    void PrintTimeline() const;
  };
  ElasticReport EmulateElastic(const std::vector<graph::VertexId>& seeds,
                               const ElasticSpec& spec,
                               obs::TraceBuffer* trace = nullptr);

  ServingCore& serving_core(std::uint32_t i) { return *serving_[i]; }
  SamplingShardCore& shard(std::uint32_t s) { return *shards_[s]; }
  std::uint32_t num_shards() const { return map_.TotalShards(); }
  // Deployment-wide registry shared by every core and the emulation
  // tracers.
  obs::MetricsRegistry& registry() { return registry_; }
  // Total bytes of all serving caches + total sampling-side state.
  std::size_t ServingCacheBytes() const;
  std::size_t SamplingStateBytes() const;

 private:
  // Routes one core's outputs in-process (used by the fast path).
  void DrainOutputs(SamplingShardCore::Outputs& out);

  QueryPlan plan_;
  HeliosEmuConfig config_;
  ShardMap map_;
  // Declared before the cores so their metric handles outlive them.
  obs::MetricsRegistry registry_;
  std::vector<std::unique_ptr<SamplingShardCore>> shards_;
  std::vector<std::unique_ptr<ServingCore>> serving_;
};

struct GraphDbEmuConfig {
  std::uint32_t nodes = 10;
  std::uint32_t threads = 32;  // per node
  sim::SimTime net_latency_us = 120;
  double gbps = 10.0;
  std::uint64_t seed = 42;
};

// A MiniGraphDB deployment: one partition per node.
class GraphDbDeployment {
 public:
  GraphDbDeployment(QueryPlan plan, graphdb::CostProfile profile, GraphDbEmuConfig config);

  void IngestAll(const std::vector<graph::GraphUpdate>& updates);
  IngestReport EmulateIngestion(const std::vector<graph::GraphUpdate>& updates,
                                double offered_rate_mps);
  // Closed-loop ad-hoc K-hop query serving with per-hop scatter/gather.
  ServeReport EmulateServing(const std::vector<graph::VertexId>& seeds,
                             std::uint32_t concurrency, std::uint64_t total_requests);

  graphdb::MiniGraphDB& db() { return *db_; }

 private:
  QueryPlan plan_;
  graphdb::CostProfile profile_;
  GraphDbEmuConfig config_;
  std::unique_ptr<graphdb::MiniGraphDB> db_;
};

// ---------------------------------------------------------------- helpers

// The Table 2 query for a dataset ("TopK" or "Random"), fan-outs [25,10]
// (or [25,10,5] for the 3-hop INTER stress query).
QueryPlan PaperQuery(const gen::DatasetSpec& spec, Strategy strategy, std::size_t hops = 2);
// The seed vertex type and population of that query.
std::pair<graph::VertexTypeId, std::uint64_t> PaperSeeds(const gen::DatasetSpec& spec);

// Row printers so every bench emits uniform, paper-comparable tables.
void PrintHeader(const std::string& title, const std::string& columns);
void PrintServeRow(const std::string& system, const std::string& dataset,
                   const std::string& strategy, std::uint32_t concurrency,
                   const ServeReport& report);

// Common CLI: scale=<n> (dataset scale divisor), requests=<n>, quick=1.
std::uint64_t ScaleFromConfig(const util::Config& config, std::uint64_t fallback);

// Shared diurnal-curve flags (gen::DiurnalSpec): diurnal-base=<qps>,
// diurnal-peak=<qps>, diurnal-period-s=<seconds>, diurnal-phase=<frac>,
// diurnal-seed=<n>. Fields absent from the command line keep the
// fallback's values, so benches (fig19 / fig21) ship their own defaults
// and the flags override per run. The curve is deterministic per spec —
// the property fig21's golden-vs-elastic parity gate relies on.
gen::DiurnalSpec DiurnalFromConfig(const util::Config& config, gen::DiurnalSpec fallback);

// Shared query-skew flags (gen::QuerySkew): zipf=<alpha> (0 = uniform) and
// zipf-seed=<n>. Every serving bench that draws seeds through this helper
// composes hot-key skew from the command line instead of a new main.
gen::QuerySkew QuerySkewFromConfig(const util::Config& config, double fallback_alpha = 0.0);

// Observability sinks shared by every bench (docs/OBSERVABILITY.md):
//   --metrics-out=<path>    registry snapshot ("-" = stdout, *.json = JSON)
//   --trace-out=<path>      Chrome-trace buffer (chrome://tracing / Perfetto)
//   --telemetry-out=<path>  windowed telemetry snapshots (JSON array)
//   --telemetry-interval=<virtual µs between snapshots, default 250000>
// The legacy spellings metrics=/trace= are still accepted. No-ops when the
// keys are absent or the sources are null/empty.
void DumpObservability(const util::Config& config, const obs::MetricsRegistry::Snapshot* snapshot,
                       const obs::TraceBuffer* trace);
// True when the bench should allocate a TraceBuffer (trace-out= given).
bool TraceRequested(const util::Config& config);
// True when the bench should allocate a TelemetryHub (telemetry-out= given).
bool TelemetryRequested(const util::Config& config);
// Snapshot cadence in virtual µs (telemetry-interval=, default 250 ms).
std::int64_t TelemetryIntervalUs(const util::Config& config);
// Writes the collected TelemetryHub snapshots as a JSON array to
// telemetry-out= ("-" = stdout). No-op when the key is absent.
void DumpTelemetry(const util::Config& config, const std::vector<std::string>& snapshots);

}  // namespace helios::bench
