// Figure 14: serving scalability on INTER (Random strategy, concurrency
// 200).
//   (a) scale-up: 4 serving nodes, serving threads 4 -> 16;
//   (b) scale-out: 16 threads, serving nodes 1 -> 4.
// Paper shape: near-linear QPS growth; P99 (avg) falls from 78ms (31ms)
// to 24ms (8ms) on scale-up and from 83ms (42ms) to 24ms (8ms) on
// scale-out.
//
// Usage: fig14_serving_scalability [scale=2000] [requests=1500]
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1500));

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kRandom, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(10000);

  auto run = [&](std::uint32_t nodes, std::uint32_t threads) {
    bench::HeliosEmuConfig hc;
    hc.sampling_nodes = 4;
    hc.serving_nodes = nodes;
    hc.serving_threads = threads;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    return helios.EmulateServing(seeds, 200, requests);
  };

  bench::PrintHeader("Fig 14(a): serving scale-up (4 nodes, threads 4->16, Random, conc 200)",
                     "threads   qps        avg_ms   p99_ms   speedup");
  double base = 0;
  for (const std::uint32_t threads : {4u, 8u, 16u}) {
    const auto report = run(4, threads);
    if (threads == 4) base = report.qps;
    std::printf("%-9u %-10.0f %-8.2f %-8.2f %.2fx\n", threads, report.qps,
                report.latency_us.Mean() / 1000.0,
                static_cast<double>(report.latency_us.P99()) / 1000.0, report.qps / base);
  }

  bench::PrintHeader("Fig 14(b): serving scale-out (16 threads, nodes 1->4, Random, conc 200)",
                     "nodes     qps        avg_ms   p99_ms   speedup");
  for (const std::uint32_t nodes : {1u, 2u, 4u}) {
    const auto report = run(nodes, 16);
    if (nodes == 1) base = report.qps;
    std::printf("%-9u %-10.0f %-8.2f %-8.2f %.2fx\n", nodes, report.qps,
                report.latency_us.Mean() / 1000.0,
                static_cast<double>(report.latency_us.P99()) / 1000.0, report.qps / base);
  }
  std::printf("\nexpected shape: near-linear qps growth, falling latency (paper Fig 14); "
              "paper absolute: >4000 qps per serving worker\n");
  return 0;
}
