// Figure 18: effect of ingestion latency (eventual consistency) on online
// GNN inference accuracy — GraphSAGE User->Item link prediction on the
// session-structured Taobao stand-in.
//
// Setup: a Helios pipeline runs in-process; sampling is always current,
// but serving-cache application of pre-sampled updates is artificially
// delayed by D seconds (the ingestion latency under study, swept 0.25s ->
// 3.5s at a 20k updates/s event rate). A logistic link head is trained on
// fresh embeddings over the train prefix; accuracy is the pairwise
// ranking accuracy (true next-click item vs an out-of-cluster negative)
// over the held-out suffix — which covers the mid-stream interest drift,
// so stale neighborhoods genuinely mispredict.
//
// Paper shape: accuracy stays close to the optimal (0-latency) case at
// the deployed ingestion latency (~1.2s) and degrades gently with D.
//
// Usage: fig18_accuracy [users=1500] [clicks=30000]
#include <cstdio>
#include <deque>

#include "bench/harness.h"
#include "gen/taobao_sessions.h"

using namespace helios;

namespace {

// Replays the stream with a serving-visibility delay of `delay_us` and
// returns pairwise link-prediction accuracy over the evaluation clicks.
double RunWithDelay(const gen::SessionTaobao& data, const QueryPlan& plan,
                    graph::Timestamp delay_us, gnn::GraphSageEncoder& encoder,
                    gnn::LinkPredictor* head_to_train, gnn::LinkPredictor* head_to_eval) {
  const ShardMap map{1, 1, 1};
  SamplingShardCore sampler(plan, map, 0, 77, {});
  ServingCore serving(plan, 0);
  util::Rng rng(1234);

  // Messages wait here until event time passes origin + delay.
  std::deque<std::pair<graph::Timestamp, ServingMessage>> in_flight;
  auto flush_until = [&](graph::Timestamp now) {
    while (!in_flight.empty() && in_flight.front().first + delay_us <= now) {
      serving.Apply(in_flight.front().second);
      in_flight.pop_front();
    }
  };

  const auto& updates = data.updates();
  const auto& clicks = data.clicks();
  const std::size_t train_end = clicks.size() * 8 / 10;
  // Map from click index to its position in the update stream is implicit:
  // we walk both in lockstep by timestamp.
  std::size_t click_idx = 0;
  std::uint64_t correct = 0, evaluated = 0;

  // Pre-extract item features (static in this generator) and embed items
  // through the same encoder (feature-only, 0-hop) so user and item
  // embeddings live in the same space.
  std::unordered_map<graph::VertexId, graph::Feature> item_features;
  for (const auto& u : updates) {
    if (const auto* v = std::get_if<graph::VertexUpdate>(&u)) {
      if (gen::VertexTypeOf(v->id) == 1) item_features[v->id] = v->feature;
    }
  }
  std::unordered_map<graph::VertexId, std::vector<float>> item_embeddings;
  auto embed_item = [&](graph::VertexId item) -> const std::vector<float>& {
    auto it = item_embeddings.find(item);
    if (it != item_embeddings.end()) return it->second;
    SampledSubgraph sub;
    sub.seed = item;
    sub.layers.resize(1);
    sub.layers[0].push_back({item, 0});
    auto fit = item_features.find(item);
    if (fit != item_features.end()) sub.features.Set(item, fit->second);
    return item_embeddings.emplace(item, encoder.EmbedSeed(sub)).first->second;
  };

  SamplingShardCore::Outputs out;
  for (const auto& u : updates) {
    const graph::Timestamp now = graph::UpdateTimestamp(u);
    // Score upcoming clicks *before* ingesting the current update (the
    // read-after-write worst case of §7.4).
    while (click_idx < clicks.size() && clicks[click_idx].ts <= now) {
      const auto& click = clicks[click_idx];
      flush_until(click.ts);
      const bool is_train = click_idx < train_end;
      // Evaluate/train on a subsample to bound runtime.
      const bool selected = rng.Bernoulli(is_train ? 0.2 : 0.5);
      if (selected) {
        const auto sample = serving.Serve(click.src);
        const auto zu = encoder.EmbedSeed(sample);
        const auto zpos = embed_item(click.dst);
        const auto zneg = embed_item(
            data.NegativeItem(rng, data.ClusterOfItem(click.dst)));
        if (is_train && head_to_train != nullptr) {
          head_to_train->Train(zu, zpos, 1.f, 0.05f);
          head_to_train->Train(zu, zneg, 0.f, 0.05f);
        } else if (!is_train && head_to_eval != nullptr) {
          evaluated += 2;
          const float sp = head_to_eval->Score(zu, zpos);
          const float sn = head_to_eval->Score(zu, zneg);
          // Pairwise ranking with ties counting half.
          correct += sp > sn ? 2 : (sp == sn ? 1 : 0);
        }
      }
      click_idx++;
    }
    // Ingest; pre-sampled outputs enter the delayed in-flight queue.
    sampler.OnGraphUpdate(u, now, out);
    out.to_serving.ForEach([&](std::uint32_t /*sew*/, const ServingMessage& msg) {
      in_flight.emplace_back(now, msg);
    });
    // Single shard: no cross-shard deltas expected.
    out.Clear();
    flush_until(now);
  }
  return evaluated > 0 ? static_cast<double>(correct) / static_cast<double>(evaluated) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  gen::SessionTaobaoOptions options;
  options.users = static_cast<std::uint64_t>(config.GetInt("users", 3000));
  options.items = static_cast<std::uint64_t>(config.GetInt("items", 2000));
  options.click_edges = static_cast<std::uint64_t>(config.GetInt("clicks", 120000));
  options.copurchase_edges = static_cast<std::uint64_t>(config.GetInt("cop", 60000));
  gen::SessionTaobao data(options);  // ~9.3s of stream at 20k updates/s

  SamplingQuery q;
  q.id = "taobao-link";
  q.seed_type = 0;
  q.hops = {{0, 10, Strategy::kTopK}, {1, 5, Strategy::kTopK}};
  const auto plan = Decompose(q, data.schema()).value();

  gnn::SageConfig sage;
  sage.input_dim = options.feature_dim;
  sage.hidden_dim = options.feature_dim;
  sage.output_dim = options.feature_dim;
  sage.num_layers = 2;
  gnn::GraphSageEncoder encoder(sage);

  // Train the logistic head once, on the zero-latency (optimal) pipeline.
  gnn::LinkPredictor head(sage.output_dim);
  RunWithDelay(data, plan, 0, encoder, &head, nullptr);

  bench::PrintHeader("Fig 18: inference accuracy vs ingestion latency (Taobao stand-in, "
                     "GraphSAGE link prediction, 20k updates/s)",
                     "ingestion_latency_s   pairwise_accuracy   vs_optimal");
  double optimal = 0;
  for (const double delay_s : {0.0, 0.25, 0.5, 1.0, 2.0, 3.5}) {
    const auto delay_us = static_cast<graph::Timestamp>(delay_s * 1e6);
    const double acc = RunWithDelay(data, plan, delay_us, encoder, nullptr, &head);
    if (delay_s == 0.0) optimal = acc;
    std::printf("%-21.2f %-19.3f %+.3f%s\n", delay_s, acc, acc - optimal,
                delay_s == 0.0 ? "  (optimal: strong-consistency case 1)" : "");
  }
  std::printf("\npaper shape: accuracy at the deployed ~1.2s ingestion latency close to the "
              "optimal case; gentle degradation as latency grows\n");
  return 0;
}
