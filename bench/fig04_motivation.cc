// Figure 4: why graph-database sampling cannot meet millisecond SLOs.
//
//  (a) graph sampling dominates end-to-end GNN inference latency and
//      exceeds the 100ms SLO on both baselines (INTER, 2-hop TopK [25,10],
//      concurrency 200, 10-node cluster + model service);
//  (b) P99 latency far above average (long tail);
//  (c) single machine, sequential queries: number of traversed vertices
//      varies >100x across seeds and latency rises with it;
//  (d) query latency grows with hop count and cluster size ([x-node,
//      y-hop] combinations).
//
// Usage: fig04_motivation [scale=2000] [seeds=2000] [requests=1500]
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "util/clock.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t num_seeds = static_cast<std::uint64_t>(config.GetInt("seeds", 2000));
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1500));

  const auto spec = gen::MakeInter(scale);
  const auto plan2 = bench::PaperQuery(spec, Strategy::kTopK, 2);
  const auto plan3 = bench::PaperQuery(spec, Strategy::kTopK, 3);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gen::SeedGenerator seed_gen(seed_type, population, 0.0, 17);
  const auto seeds = seed_gen.Batch(num_seeds);

  // A model server with the paper's deployment shape for the e2e share.
  gnn::SageConfig sage;
  sage.input_dim = spec.schema.feature_dim;
  sage.hidden_dim = 64;
  sage.output_dim = 64;
  gnn::ModelServer model(sage);

  // ---------------------------------------------------------- (a) + (b)
  bench::PrintHeader("Fig 4(a)/(b): sampling share of e2e latency & tail (INTER, TopK [25,10], "
                     "conc 200)",
                     "system        sampling_avg_ms sampling_p99_ms  e2e_avg_ms  sampling_share");
  for (const auto& profile : {graphdb::TigerGraphProfile(), graphdb::NebulaGraphProfile()}) {
    bench::GraphDbEmuConfig db_config;
    db_config.nodes = 10;
    bench::GraphDbDeployment db(plan2, profile, db_config);
    db.IngestAll(updates);
    const auto serve = db.EmulateServing(seeds, 200, requests);

    // Model-inference cost measured on a representative sampled subgraph.
    graphdb::MiniGraphDB& mdb = db.db();
    util::Rng rng(3);
    SampledSubgraph sample;
    const auto trace = mdb.ExecuteKHop(seeds[0], plan2, rng);
    sample.seed = trace.seed;
    sample.layers.resize(trace.layers.size());
    for (std::size_t d = 0; d < trace.layers.size(); ++d) {
      for (const auto& n : trace.layers[d]) sample.layers[d].push_back({n.vertex, n.parent});
    }
    const auto infer_us = util::TimeIt([&] {
      for (int i = 0; i < 32; ++i) (void)model.Infer(sample);
    }) / 32.0;

    const double sampling_avg_ms = serve.latency_us.Mean() / 1000.0;
    const double e2e_avg_ms = sampling_avg_ms + infer_us / 1000.0 + 0.5;  // +transfer
    std::printf("%-13s %-15.1f %-16.1f %-11.1f %.1f%%\n", profile.name.c_str(),
                sampling_avg_ms, static_cast<double>(serve.latency_us.P99()) / 1000.0,
                e2e_avg_ms, 100.0 * sampling_avg_ms / e2e_avg_ms);
  }

  // -------------------------------------------------------------- (c)
  bench::PrintHeader(
      "Fig 4(c): traversed vertices vs latency (single node, sequential, TopK [25,10])",
      "traversed_bucket   queries   avg_latency_us   max_latency_us");
  {
    bench::GraphDbEmuConfig db_config;
    db_config.nodes = 1;
    bench::GraphDbDeployment db(plan2, graphdb::TigerGraphProfile(), db_config);
    db.IngestAll(updates);
    util::Rng rng(23);
    struct Bucket {
      std::uint64_t queries = 0;
      double total_us = 0;
      double max_us = 0;
    };
    std::map<std::uint64_t, Bucket> buckets;  // keyed by pow-of-4 bucket
    std::uint64_t min_traversed = ~0ULL, max_traversed = 0;
    const double visit_us = graphdb::TigerGraphProfile().per_vertex_visit_us;
    for (const auto seed : seeds) {
      graphdb::QueryTrace trace;
      auto us = util::TimeIt([&] { trace = db.db().ExecuteKHop(seed, plan2, rng); });
      if (trace.vertices_traversed == 0) continue;
      // Charge the interpreted-engine per-visit cost the emulator charges.
      us += static_cast<util::Micros>(static_cast<double>(trace.vertices_traversed) * visit_us);
      min_traversed = std::min(min_traversed, trace.vertices_traversed);
      max_traversed = std::max(max_traversed, trace.vertices_traversed);
      std::uint64_t bucket = 1;
      while (bucket * 4 <= trace.vertices_traversed) bucket *= 4;
      auto& b = buckets[bucket];
      b.queries++;
      b.total_us += static_cast<double>(us);
      b.max_us = std::max(b.max_us, static_cast<double>(us));
    }
    for (const auto& [bucket, b] : buckets) {
      std::printf("[%8llu,%8llu)  %-8llu  %-15.1f  %.0f\n",
                  static_cast<unsigned long long>(bucket),
                  static_cast<unsigned long long>(bucket * 4),
                  static_cast<unsigned long long>(b.queries), b.total_us / b.queries, b.max_us);
    }
    std::printf("traversed-vertex spread across seeds: %.0fx (paper: >100x)\n",
                static_cast<double>(max_traversed) / static_cast<double>(min_traversed));
  }

  // -------------------------------------------------------------- (d)
  bench::PrintHeader("Fig 4(d): [nodes, hops] vs query latency (TopK, conc 1)",
                     "config      avg_ms    p99_ms");
  struct Cfg {
    std::uint32_t nodes;
    int hops;
  };
  for (const Cfg& c : {Cfg{1, 2}, Cfg{4, 2}, Cfg{10, 2}, Cfg{4, 3}, Cfg{10, 3}}) {
    bench::GraphDbEmuConfig db_config;
    db_config.nodes = c.nodes;
    const auto& plan = c.hops == 3 ? plan3 : plan2;
    bench::GraphDbDeployment db(plan, graphdb::TigerGraphProfile(), db_config);
    db.IngestAll(updates);
    const auto serve = db.EmulateServing(seeds, 1, std::min<std::uint64_t>(requests, 400));
    std::printf("[%2u,%d]      %-9.1f %-9.1f\n", c.nodes, c.hops,
                serve.latency_us.Mean() / 1000.0,
                static_cast<double>(serve.latency_us.P99()) / 1000.0);
  }
  return 0;
}
