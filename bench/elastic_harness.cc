// The fig21 elastic autoscaling scenario on the DES emulator.
//
// Open-loop queries arrive on a deterministic diurnal curve (gen::
// DiurnalArrivals) and route shard -> node through a versioned
// elastic::ShardMap placement. A control loop runs every
// decision_interval_us: obs::TelemetryHub::WindowLoads feeds
// elastic::Rebalancer::Tick, and the resulting Plan is executed through
// elastic::ShardMigrator — checkpoint (a real SamplingShardCore::Serialize),
// wire transfer on the SimCluster NIC, install (a real Deserialize), epoch
// bump, map flip, and a destination-side cutover pause. Node adds and
// drain-then-retire follow the plan's target_nodes / drain lists.
//
// Parity contract: every response payload is *executed* (ServeInto) and
// folded into an FNV-1a hash. The arrival times, seed draws, and service
// times are all independent of placement, so a run with
// migrations_enabled == false is a golden run over the identical workload,
// and a byte-identical served_hash proves the migration machinery never
// touched a served result (ISSUE acceptance; the threaded-runtime twin of
// this assertion lives in tests/elastic_test.cc).
#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "util/rng.h"

namespace helios::bench {

namespace {

// Mirrors the serving-path response model in harness.cc: header + 12 bytes
// per sampled node + keyed feature rows.
std::size_t ElasticResponseBytes(const SampledSubgraph& result) {
  std::size_t bytes = 64;
  for (const auto& layer : result.layers) bytes += layer.size() * 12;
  result.features.ForEach(
      [&](graph::VertexId, std::span<const float> f) { bytes += 12 + f.size() * 4; });
  return bytes;
}

void FoldHash(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

// Canonical digest of one served response: structure + feature payload bit
// patterns. Deterministic because the same query sequence builds the same
// subgraph (and thus the same FeatureTable iteration order) in both runs.
void FoldResponse(std::uint64_t& h, std::uint64_t query_idx, const SampledSubgraph& out) {
  FoldHash(h, query_idx);
  FoldHash(h, static_cast<std::uint64_t>(out.seed));
  FoldHash(h, out.layers.size());
  for (const auto& layer : out.layers) {
    FoldHash(h, layer.size());
    for (const auto& node : layer) {
      FoldHash(h, static_cast<std::uint64_t>(node.vertex));
      FoldHash(h, node.parent);
    }
  }
  out.features.ForEach([&](graph::VertexId v, std::span<const float> f) {
    FoldHash(h, static_cast<std::uint64_t>(v));
    for (float x : f) {
      std::uint32_t bits;
      static_assert(sizeof(bits) == sizeof(x));
      __builtin_memcpy(&bits, &x, sizeof(bits));
      FoldHash(h, bits);
    }
  });
}

}  // namespace

gen::DiurnalSpec DiurnalFromConfig(const util::Config& config, gen::DiurnalSpec fallback) {
  gen::DiurnalSpec spec = fallback;
  spec.base_qps = config.GetDouble("diurnal-base", spec.base_qps);
  spec.peak_qps = config.GetDouble("diurnal-peak", spec.peak_qps);
  const double period_s =
      config.GetDouble("diurnal-period-s", static_cast<double>(spec.period_us) / 1e6);
  spec.period_us = static_cast<std::int64_t>(period_s * 1e6);
  spec.phase = config.GetDouble("diurnal-phase", spec.phase);
  spec.seed = static_cast<std::uint64_t>(
      config.GetInt("diurnal-seed", static_cast<std::int64_t>(spec.seed)));
  return spec;
}

void HeliosDeployment::ElasticReport::PrintTimeline() const {
  std::printf("%8s %10s %6s %7s %9s %5s  %s\n", "t_s", "offered", "nodes", "spread",
              "p99_ms", "migr", "nodes|load");
  for (const Bucket& b : timeline) {
    std::string bar(b.active_nodes, '#');
    bar += '|';
    const int load_ticks = static_cast<int>(std::min(40.0, b.offered_qps / 250.0));
    bar.append(static_cast<std::size_t>(std::max(0, load_ticks)), '=');
    std::printf("%8.1f %10.1f %6u %7.2f %9.3f %5u  %s\n",
                static_cast<double>(b.t_us) / 1e6, b.offered_qps, b.active_nodes,
                b.load_spread, static_cast<double>(b.p99_us) / 1e3, b.migrations,
                bar.c_str());
  }
}

HeliosDeployment::ElasticReport HeliosDeployment::EmulateElastic(
    const std::vector<graph::VertexId>& seeds, const ElasticSpec& spec,
    obs::TraceBuffer* trace) {
  ElasticReport report;
  if (seeds.empty() || !spec.diurnal.Enabled() || spec.duration_us <= 0) return report;

  const std::uint32_t shards = map_.TotalShards();
  const std::uint32_t max_nodes = std::max(spec.max_nodes, std::max(spec.initial_nodes, 1u));

  sim::SimEnv env;
  sim::SimCluster::Options copt;
  copt.num_nodes = max_nodes;
  copt.cores_per_node = config_.serving_threads;
  copt.net_latency_us = config_.net_latency_us;
  copt.gbps = config_.gbps;
  sim::SimCluster cluster(env, copt);
  if (trace != nullptr) {
    cluster.EnableTracing(trace);
    trace->SetProcessName(1000, "elastic-control-plane");
  }

  // Placement, migration ledger, policy, node lifecycle, load gauges.
  elastic::ShardMap placement = elastic::ShardMap::Striped(shards, spec.initial_nodes);
  elastic::ShardMigrator migrator({spec.max_concurrent_migrations, &registry_}, &placement);
  elastic::RebalancerOptions ropt;
  ropt.node_capacity_qps =
      spec.node_capacity_qps * (spec.policy_headroom > 0 ? spec.policy_headroom : 1.0);
  ropt.min_nodes = spec.min_nodes;
  ropt.max_nodes = max_nodes;
  ropt.max_concurrent_migrations = spec.max_concurrent_migrations;
  ropt.shard_cooldown_us = spec.shard_cooldown_us;
  ropt.decision_interval_us = spec.decision_interval_us;
  ropt.registry = &registry_;
  elastic::Rebalancer rebalancer(ropt);
  elastic::NodeSet nodes(max_nodes, spec.initial_nodes);
  obs::TelemetryHub::Options topt;
  topt.num_lanes = shards;
  topt.window_us = std::max<std::int64_t>(500'000, 2 * spec.decision_interval_us);
  topt.lane_label = "shard";
  obs::TelemetryHub telemetry(&registry_, topt);

  // Autoscaler calibration requires deterministic service times (measured
  // wall time would make the golden and elastic runs diverge), so queries
  // cost exactly capacity's worth of virtual CPU: one node saturates at
  // node_capacity_qps.
  const sim::SimTime service_us = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(
             std::llround(1e6 * config_.serving_threads / spec.node_capacity_qps)));

  // Timeline buckets.
  const sim::SimTime bucket_us = std::max<sim::SimTime>(1, spec.timeline_bucket_us);
  const std::size_t nb =
      static_cast<std::size_t>((spec.duration_us + bucket_us - 1) / bucket_us);
  std::vector<std::uint64_t> bucket_offered(nb, 0);
  std::vector<util::Histogram> bucket_latency(nb);
  std::vector<std::uint32_t> bucket_migrations(nb, 0);
  std::vector<std::uint32_t> bucket_nodes(nb, 0);
  std::vector<std::vector<std::uint64_t>> bucket_node_done(
      nb, std::vector<std::uint64_t>(max_nodes, 0));
  auto bucket_of = [&](sim::SimTime t) {
    return std::min(nb - 1, static_cast<std::size_t>(std::max<sim::SimTime>(0, t) / bucket_us));
  };

  report.peak_nodes = nodes.ActiveCount();

  // ---- query flow ------------------------------------------------------
  gen::DiurnalArrivals arrivals(spec.diurnal);
  util::Rng seed_rng(spec.seed_pick_seed ^ config_.seed);
  SampledSubgraph out;
  ServeScratch scratch;
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis

  std::function<void(std::int64_t)> arrive_at = [&](std::int64_t t) {
    if (t >= spec.duration_us) return;
    env.ScheduleAt(t, [&, t] {
      const std::uint64_t idx = report.offered++;
      const graph::VertexId seed = seeds[seed_rng.Uniform(seeds.size())];
      const std::uint32_t shard = map_.ShardOf(seed);
      const std::uint32_t node = placement.Current()->OwnerOf(shard);
      // Execute the real read path; the payload digest is the parity gate.
      serving_[map_.ServingWorkerOf(seed)]->ServeInto(seed, out, scratch);
      FoldResponse(hash, idx, out);
      const std::uint64_t bytes = ElasticResponseBytes(out);
      bucket_offered[bucket_of(t)]++;
      // The load gauges record at *arrival* (offered load, service cost as
      // the latency sample): an autoscaler fed by completion rates can
      // never see demand above current capacity, so it chases its own
      // tail while the backlog grows. End-to-end latency (with queueing)
      // is scored engine-side into the timeline and the SLO band.
      telemetry.RecordQuery(shard, t, static_cast<std::uint64_t>(service_us), bytes);
      cluster.cpu(node).Enqueue(service_us, [&, t, node] {
        const std::int64_t lat = env.now() - t;
        report.completed++;
        report.latency_us.Record(static_cast<std::uint64_t>(lat));
        const std::size_t b = bucket_of(env.now());
        bucket_latency[b].Record(static_cast<std::uint64_t>(lat));
        bucket_node_done[b][node]++;
      });
      arrive_at(arrivals.NextAfter(t));
    });
  };
  arrive_at(arrivals.NextAfter(0));

  // ---- migration mechanics ---------------------------------------------
  std::vector<std::uint32_t> shard_epoch(shards, 1);
  auto run_migration = [&](const elastic::MigrationOrder& m) {
    if (placement.Current()->OwnerOf(m.shard) != m.from) return;
    if (m.to >= max_nodes || nodes.active[m.to] == 0 || nodes.draining[m.to] != 0) return;
    const std::uint64_t id = migrator.Begin(m.shard, m.from, m.to, env.now());
    if (id == 0) return;
    rebalancer.NoteMigration(m.shard, env.now());
    const std::int64_t started = env.now();
    // Checkpoint: the source really serializes the shard, and the blob's
    // true size pays the wire.
    auto blob = std::make_shared<std::string>();
    {
      graph::ByteWriter w;
      shards_[m.shard]->Serialize(w);
      *blob = w.Take();
    }
    migrator.NoteCheckpoint(id, shards_[m.shard]->applied_offset(),
                            static_cast<std::uint64_t>(blob->size()));
    report.ckpt_bytes_moved += blob->size();
    migrator.Advance(id, elastic::MigrationState::kTransferring);
    cluster.Send(m.from, m.to, blob->size(), [&, id, m, blob, started] {
      // Install: a fresh core restores from the checkpoint (real
      // deserialize). The serving phase appends no update log, so the
      // replay tail is empty — exactly-once here means the restored state
      // equals the source byte-for-byte, which Deserialize asserts by
      // construction and the threaded-runtime tests assert end-to-end.
      SamplingShardCore::Options opts;
      opts.registry = &registry_;
      auto fresh =
          std::make_unique<SamplingShardCore>(plan_, map_, m.shard, config_.seed, opts);
      graph::ByteReader r(*blob);
      if (SamplingShardCore::Deserialize(r, *fresh)) shards_[m.shard] = std::move(fresh);
      migrator.Advance(id, elastic::MigrationState::kReplaying);
      migrator.NoteReplayed(id, 0);
      migrator.NoteEpoch(id, ++shard_epoch[m.shard]);
      migrator.Advance(id, elastic::MigrationState::kEpochBumped);
      // Cutover: the destination stalls one pause while the flip publishes
      // and ownership caches flush (the DES twin of
      // ThreadedCluster::FlushOwnershipCachesLocked).
      cluster.cpu(m.to).Enqueue(spec.cutover_pause_us, [&, id, m, started] {
        migrator.Flip(id);
        migrator.Complete(id, env.now());
        report.migrations++;
        bucket_migrations[bucket_of(env.now())]++;
        if (trace != nullptr) {
          trace->AddComplete("migrate-shard-" + std::to_string(m.shard) + "-n" +
                                 std::to_string(m.from) + "->n" + std::to_string(m.to),
                             "elastic", started, env.now() - started, 1000, m.shard);
        }
      });
    });
  };

  // ---- control loop ----------------------------------------------------
  std::function<void()> control = [&] {
    const std::int64_t now = env.now();
    telemetry.Advance(now);
    const auto lanes = telemetry.WindowLoads();
    std::vector<elastic::ShardLoad> loads;
    loads.reserve(lanes.size());
    for (std::uint32_t i = 0; i < lanes.size(); ++i)
      loads.push_back({i, lanes[i].qps, lanes[i].bytes_per_s, lanes[i].p99_us});
    const elastic::Plan plan =
        rebalancer.Tick(now, loads, *placement.Current(), nodes, migrator.InFlight());
    if (spec.migrations_enabled && plan.acted) {
      // Scale up: wake the lowest-index parked nodes first.
      for (std::uint32_t n = 0; n < max_nodes && nodes.ActiveCount() < plan.target_nodes;
           ++n) {
        if (nodes.active[n] == 0) {
          nodes.active[n] = 1;
          nodes.draining[n] = 0;
          report.nodes_added++;
          if (trace != nullptr) trace->AddInstant("node-add-" + std::to_string(n),
                                                  "elastic", now, 1000, 0);
        }
      }
      for (std::uint32_t n : plan.drain) {
        if (n < max_nodes && nodes.active[n] != 0 && nodes.draining[n] == 0) {
          nodes.draining[n] = 1;
          if (trace != nullptr) trace->AddInstant("node-drain-" + std::to_string(n),
                                                  "elastic", now, 1000, 0);
        }
      }
      for (const elastic::MigrationOrder& m : plan.migrations) run_migration(m);
    }
    if (spec.migrations_enabled) {
      // Drain-then-retire: a draining node whose shards all flipped away
      // (and with no migration still in flight) parks.
      for (std::uint32_t n = 0; n < max_nodes; ++n) {
        if (nodes.draining[n] != 0 && placement.Current()->ShardsOf(n).empty() &&
            migrator.InFlight() == 0) {
          nodes.active[n] = 0;
          nodes.draining[n] = 0;
          report.nodes_retired++;
          if (trace != nullptr) trace->AddInstant("node-retire-" + std::to_string(n),
                                                  "elastic", now, 1000, 0);
        }
      }
    }
    report.peak_nodes = std::max(report.peak_nodes, nodes.ActiveCount());
    bucket_nodes[bucket_of(now)] = nodes.ActiveCount();
    if (trace != nullptr)
      trace->AddCounter("elastic.active_nodes", now, 1000, "nodes", nodes.ActiveCount());
    if (now < spec.duration_us) env.ScheduleAfter(spec.decision_interval_us, control);
  };
  env.ScheduleAfter(spec.decision_interval_us, control);

  env.Run();

  // ---- assemble the report ---------------------------------------------
  report.served_hash = hash;
  report.final_nodes = nodes.ActiveCount();
  report.final_map_version = placement.version();
  report.timeline_bucket_us = bucket_us;
  std::uint32_t last_nodes = spec.initial_nodes;
  for (std::size_t b = 0; b < nb; ++b) {
    if (bucket_nodes[b] == 0) bucket_nodes[b] = last_nodes;  // forward-fill
    last_nodes = bucket_nodes[b];
    ElasticReport::Bucket row;
    row.t_us = static_cast<sim::SimTime>(b) * bucket_us;
    row.offered_qps = static_cast<double>(bucket_offered[b]) * 1e6 / bucket_us;
    row.active_nodes = bucket_nodes[b];
    std::uint64_t done = 0, peak = 0;
    for (std::uint32_t n = 0; n < max_nodes; ++n) {
      done += bucket_node_done[b][n];
      peak = std::max(peak, bucket_node_done[b][n]);
    }
    const double mean =
        row.active_nodes > 0 ? static_cast<double>(done) / row.active_nodes : 0.0;
    row.load_spread = mean > 0 ? static_cast<double>(peak) / mean : 0.0;
    row.p99_us = bucket_latency[b].count() > 0 ? bucket_latency[b].P99() : 0;
    row.migrations = bucket_migrations[b];
    report.timeline.push_back(row);
  }
  return report;
}

}  // namespace helios::bench
