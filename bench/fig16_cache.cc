// Figure 16: query-aware sample cache footprint vs number of serving
// workers (INTER). The cache holds only the sampled topology + features of
// subscribed vertices, sliced across workers, so the per-worker ratio to
// the original dataset size falls as workers are added (paper: 62% -> 19%
// from 1 to 4 workers; caches partially overlap, so the drop is
// sub-linear).
//
// Also the computation-reuse figures (docs/PERF.md "Computation reuse &
// admission"): Fig 16c sweeps query skew (zipf alpha) and reports the
// aggregate-cache hit rate and the cached-vs-uncached serve+embed speedup;
// Fig 16d sweeps the staleness bound under delta churn and reports how
// many hits were forced to recompute.
//
// Usage: fig16_cache [scale=2000] [zipf-seed=77]
#include <cstdio>

#include "bench/harness.h"
#include "util/clock.h"

using namespace helios;

namespace {

// Serves + embeds every seed once; cached=true goes through the reuse tier
// (EmbedSeedCached), else the plain Serve+EmbedSeed path. Returns wall ns.
util::Nanos EmbedAll(bench::HeliosDeployment& dep, const gnn::GraphSageEncoder& encoder,
                     const std::vector<graph::VertexId>& seeds, bool cached,
                     gnn::CachedEmbedScratch& cs, ServeScratch& ss,
                     helios::AggregateServeResult* totals = nullptr) {
  SampledSubgraph result;
  std::vector<float> out;
  return util::TimeItNanos([&] {
    for (const graph::VertexId seed : seeds) {
      if (cached) {
        if (!encoder.EmbedSeedCached(dep.serving_core(0), seed, cs, out)) std::abort();
        if (totals != nullptr) {
          totals->cache_hits += cs.result.cache_hits;
          totals->cache_misses += cs.result.cache_misses;
          totals->stale_recomputes += cs.result.stale_recomputes;
        }
      } else {
        dep.serving_core(0).ServeInto(seed, result, ss);
        out = encoder.EmbedSeed(result);
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();

  // "Original dataset size": adjacency (20B/edge) + features.
  std::size_t dataset_bytes = 0;
  for (const auto& u : updates) {
    if (std::holds_alternative<graph::EdgeUpdate>(u)) {
      dataset_bytes += 20;
    } else {
      dataset_bytes += 16 + spec.schema.feature_dim * 4;
    }
  }

  bench::PrintHeader("Fig 16: per-worker cache ratio vs serving workers (INTER, TopK [25,10])",
                     "serving_workers   avg_cache_bytes_per_worker   cache_ratio");
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    bench::HeliosEmuConfig hc;
    hc.serving_nodes = workers;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    const std::size_t total = helios.ServingCacheBytes();
    const double per_worker = static_cast<double>(total) / workers;
    std::printf("%-17u %-28.0f %.0f%%\n", workers, per_worker,
                100.0 * per_worker / static_cast<double>(dataset_bytes));
  }
  std::printf("\ndataset size (adjacency+features): %zu bytes; expected shape: ratio falls "
              "with workers, sub-linearly due to cache overlap (paper: 62%% -> 19%%)\n",
              dataset_bytes);

  // Quantized feature storage: the same single-worker cache with features
  // stored fp16 / int8 (topology bytes are format-independent). max_abs_err
  // is the measured worst-case feature reconstruction error over the whole
  // update stream (bounds: fp16 max(|x|*2^-11, 2^-24); int8 scale/2 with
  // scale = maxabs/127).
  bench::PrintHeader("Fig 16b: cache bytes vs feature storage format (1 serving worker)",
                     "format   cache_bytes   vs_fp32   max_abs_err");
  std::size_t fp32_bytes = 0;
  for (const FeatureFormat format :
       {FeatureFormat::kFp32, FeatureFormat::kFp16, FeatureFormat::kInt8}) {
    bench::HeliosEmuConfig hc;
    hc.serving_nodes = 1;
    hc.feature_format = format;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    const std::size_t bytes = helios.ServingCacheBytes();
    if (format == FeatureFormat::kFp32) fp32_bytes = bytes;
    double max_err = 0.0;
    for (const auto& u : updates) {
      if (!std::holds_alternative<graph::VertexUpdate>(u)) continue;
      const auto& f = std::get<graph::VertexUpdate>(u).feature;
      const graph::Feature back = DecodeFeatureValue(EncodeFeatureValue(f, format));
      for (std::size_t i = 0; i < f.size(); ++i) {
        max_err = std::max(max_err, std::abs(static_cast<double>(f[i]) - back[i]));
      }
    }
    std::printf("%-8s %-13zu %-9.2f %.3g\n", FeatureFormatName(format), bytes,
                fp32_bytes > 0 ? static_cast<double>(bytes) / static_cast<double>(fp32_bytes) : 0.0,
                max_err);
  }

  // ---- computation-reuse rows ----
  const auto [seed_type, population] = bench::PaperSeeds(spec);
  gnn::SageConfig sage;
  sage.input_dim = spec.schema.feature_dim;
  sage.hidden_dim = 64;
  sage.output_dim = 64;
  const gnn::GraphSageEncoder encoder(sage);
  constexpr std::size_t kQueries = 4000;

  bench::PrintHeader("Fig 16c: aggregate-cache hit rate & speedup vs query skew (1 worker)",
                     "zipf_alpha   hit_rate   uncached_us/q   cached_us/q   speedup");
  for (const double alpha : {0.0, 0.8, 0.99, 1.2}) {
    gen::QuerySkew skew = bench::QuerySkewFromConfig(config, alpha);
    skew.alpha = alpha;
    const auto seeds = gen::HotKeyBatch(seed_type, population, skew, kQueries);
    bench::HeliosEmuConfig hc;
    hc.serving_nodes = 1;
    // Deliberately smaller than the hop-1 working set so the hit rate is
    // the skew's doing, not the capacity's.
    hc.aggregate_cache_entries = 1 << 11;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    gnn::CachedEmbedScratch cs;
    ServeScratch ss;
    // Warm pass populates the cache (and the uncached path's scratch), the
    // measured pass serves the same skewed draw again.
    EmbedAll(helios, encoder, seeds, true, cs, ss);
    EmbedAll(helios, encoder, seeds, false, cs, ss);
    AggregateServeResult totals;
    const util::Nanos cached_ns = EmbedAll(helios, encoder, seeds, true, cs, ss, &totals);
    const util::Nanos uncached_ns = EmbedAll(helios, encoder, seeds, false, cs, ss);
    const double hit_rate =
        static_cast<double>(totals.cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(
            totals.cache_hits + totals.cache_misses + totals.stale_recomputes, 1));
    std::printf("%-12.2f %-10.3f %-15.1f %-13.1f %.2fx\n", alpha, hit_rate,
                static_cast<double>(uncached_ns) / 1e3 / kQueries,
                static_cast<double>(cached_ns) / 1e3 / kQueries,
                static_cast<double>(uncached_ns) / static_cast<double>(cached_ns));
  }

  bench::PrintHeader("Fig 16d: staleness bound vs recompute share (zipf 0.99, 1 worker)",
                     "staleness_bound_us   hit_rate   stale_share");
  for (const std::int64_t bound : {std::int64_t{0}, std::int64_t{200}, std::int64_t{-1}}) {
    gen::QuerySkew skew = bench::QuerySkewFromConfig(config, 0.99);
    const auto seeds = gen::HotKeyBatch(seed_type, population, skew, kQueries);
    bench::HeliosEmuConfig hc;
    hc.serving_nodes = 1;
    hc.aggregate_cache_entries = 1 << 15;
    hc.aggregate_staleness_us = bound;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    gnn::CachedEmbedScratch cs;
    ServeScratch ss;
    EmbedAll(helios, encoder, seeds, true, cs, ss);
    AggregateServeResult totals;
    EmbedAll(helios, encoder, seeds, true, cs, ss, &totals);
    const std::uint64_t lookups = std::max<std::uint64_t>(
        totals.cache_hits + totals.cache_misses + totals.stale_recomputes, 1);
    std::printf("%-20lld %-10.3f %.3f\n", static_cast<long long>(bound),
                static_cast<double>(totals.cache_hits) / static_cast<double>(lookups),
                static_cast<double>(totals.stale_recomputes) / static_cast<double>(lookups));
  }
  std::printf("\nexpected shape: hit rate and speedup rise with skew; bound 0 always "
              "recomputes (bit-parity mode), bound -1 never ages out\n");
  return 0;
}
