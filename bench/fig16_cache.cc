// Figure 16: query-aware sample cache footprint vs number of serving
// workers (INTER). The cache holds only the sampled topology + features of
// subscribed vertices, sliced across workers, so the per-worker ratio to
// the original dataset size falls as workers are added (paper: 62% -> 19%
// from 1 to 4 workers; caches partially overlap, so the drop is
// sub-linear).
//
// Usage: fig16_cache [scale=2000]
#include <cstdio>

#include "bench/harness.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);

  const auto spec = gen::MakeInter(scale);
  const auto plan = bench::PaperQuery(spec, Strategy::kTopK, 2);
  gen::UpdateStream stream(spec);
  const auto updates = stream.Drain();

  // "Original dataset size": adjacency (20B/edge) + features.
  std::size_t dataset_bytes = 0;
  for (const auto& u : updates) {
    if (std::holds_alternative<graph::EdgeUpdate>(u)) {
      dataset_bytes += 20;
    } else {
      dataset_bytes += 16 + spec.schema.feature_dim * 4;
    }
  }

  bench::PrintHeader("Fig 16: per-worker cache ratio vs serving workers (INTER, TopK [25,10])",
                     "serving_workers   avg_cache_bytes_per_worker   cache_ratio");
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    bench::HeliosEmuConfig hc;
    hc.serving_nodes = workers;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    const std::size_t total = helios.ServingCacheBytes();
    const double per_worker = static_cast<double>(total) / workers;
    std::printf("%-17u %-28.0f %.0f%%\n", workers, per_worker,
                100.0 * per_worker / static_cast<double>(dataset_bytes));
  }
  std::printf("\ndataset size (adjacency+features): %zu bytes; expected shape: ratio falls "
              "with workers, sub-linearly due to cache overlap (paper: 62%% -> 19%%)\n",
              dataset_bytes);

  // Quantized feature storage: the same single-worker cache with features
  // stored fp16 / int8 (topology bytes are format-independent). max_abs_err
  // is the measured worst-case feature reconstruction error over the whole
  // update stream (bounds: fp16 max(|x|*2^-11, 2^-24); int8 scale/2 with
  // scale = maxabs/127).
  bench::PrintHeader("Fig 16b: cache bytes vs feature storage format (1 serving worker)",
                     "format   cache_bytes   vs_fp32   max_abs_err");
  std::size_t fp32_bytes = 0;
  for (const FeatureFormat format :
       {FeatureFormat::kFp32, FeatureFormat::kFp16, FeatureFormat::kInt8}) {
    bench::HeliosEmuConfig hc;
    hc.serving_nodes = 1;
    hc.feature_format = format;
    bench::HeliosDeployment helios(plan, hc);
    helios.IngestAll(updates);
    const std::size_t bytes = helios.ServingCacheBytes();
    if (format == FeatureFormat::kFp32) fp32_bytes = bytes;
    double max_err = 0.0;
    for (const auto& u : updates) {
      if (!std::holds_alternative<graph::VertexUpdate>(u)) continue;
      const auto& f = std::get<graph::VertexUpdate>(u).feature;
      const graph::Feature back = DecodeFeatureValue(EncodeFeatureValue(f, format));
      for (std::size_t i = 0; i < f.size(); ++i) {
        max_err = std::max(max_err, std::abs(static_cast<double>(f[i]) - back[i]));
      }
    }
    std::printf("%-8s %-13zu %-9.2f %.3g\n", FeatureFormatName(format), bytes,
                fp32_bytes > 0 ? static_cast<double>(bytes) / static_cast<double>(fp32_bytes) : 0.0,
                max_err);
  }
  return 0;
}
