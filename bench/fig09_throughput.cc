// Figure 9: end-to-end serving throughput (QPS) of Helios vs TigerGraph /
// NebulaGraph stand-ins, TopK and Random 2-hop [25,10] queries on the
// BI / INTER / FIN stand-ins, under rising request concurrency.
//
// Paper shape to reproduce: Helios sustains orders-of-magnitude higher QPS
// (up to 184x on TopK, 47x on Random); baselines are slower on TopK than
// Random (full neighbor traversal), while Helios is strategy-independent.
//
// Usage: fig09_throughput [scale=2000] [requests=1200]
#include <cstdio>

#include "bench/serving_sweep.h"

using namespace helios;

int main(int argc, char** argv) {
  const auto config = util::Config::FromArgs(argc, argv);
  const std::uint64_t scale = bench::ScaleFromConfig(config, 2000);
  const std::uint64_t requests = static_cast<std::uint64_t>(config.GetInt("requests", 1200));

  bench::PrintHeader("Fig 9: serving throughput, Helios vs baselines (2-hop [25,10])",
                     "system       dataset  strategy   concurrency -> qps / latency");
  double best_speedup_topk = 0, best_speedup_random = 0;
  double helios_qps = 0, tiger_qps = 0;
  bench::RunServingSweep(scale, requests, {100, 200, 400, 800},
                         [&](const bench::SweepPoint& p) {
                           bench::PrintServeRow(p.system, p.dataset, p.strategy, p.concurrency,
                                                p.report);
                           if (p.system == "Helios") helios_qps = p.report.qps;
                           if (p.system == "TigerGraph") tiger_qps = p.report.qps;
                           if (p.system == "NebulaGraph" && tiger_qps > 0) {
                             const double base = std::min(tiger_qps, p.report.qps);
                             const double speedup = base > 0 ? helios_qps / base : 0;
                             auto& best = p.strategy == std::string("TopK")
                                              ? best_speedup_topk
                                              : best_speedup_random;
                             best = std::max(best, speedup);
                           }
                         });
  std::printf("\nmax Helios speedup vs slower baseline: TopK %.0fx (paper: up to 184x), "
              "Random %.0fx (paper: up to 47x)\n",
              best_speedup_topk, best_speedup_random);
  return 0;
}
